//! Lazy-reduction accumulators for the tower: double-width `Fp`, `Fp2`
//! and `Fp6` values that defer the Montgomery reduction until a tower
//! *output coefficient* is closed (Aranha et al.).
//!
//! An eager Karatsuba tower pays one Montgomery reduction per base-field
//! product — 54 for an `Fp12` multiplication. But every tower formula
//! only ever *sums* products before anything multiplies them again, so
//! the sums can run on unreduced `2N`-limb values
//! ([`vchain_bigint::DoubleWide`]) and each of the 12 output coefficients
//! can be reduced exactly once:
//!
//! | op                       | eager reductions | lazy reductions |
//! |--------------------------|------------------|-----------------|
//! | `Fp2` mul                | 3                | 2               |
//! | `Fp2` square             | 2                | 2               |
//! | `Fp6` mul                | 18               | 6               |
//! | `Fp6` square             | 13               | 6               |
//! | `Fp6` mul_by_01          | 15               | 6               |
//! | `Fp6` mul_by_1           | 9                | 6               |
//! | `Fp12` mul               | 54               | 12              |
//! | `Fp12` square            | 36               | 12              |
//! | `Fp12` mul_by_line       | 39               | 12              |
//! | `Fp4` square pair        | 6                | 4               |
//! | cyclotomic square        | 18               | 12              |
//! | compressed (Karabina) sq | 12               | 8               |
//!
//! ## Bound discipline
//!
//! Two invariants make every formula below overflow-safe without any
//! per-formula analysis:
//!
//! 1. **Operands are always canonical.** Karatsuba operand sums
//!    (`a0 + a1`, …) are ordinary modular additions of *reduced* values,
//!    so every `FpWide::mul` input is `< p` and every product `< p²`.
//! 2. **Accumulators live modulo `p·R`.** Wide adds/subs renormalize into
//!    `[0, p·R)` (a high-half compare plus a rare 6-limb fixup — see
//!    `vchain_bigint::dwide`), under which `montgomery_reduce` is valid
//!    for any value and one conditional subtraction canonicalizes.
//!
//! The headroom quotient `⌊R/p⌋` says how many `< p²` products could be
//! summed with *raw* carrying adds before reaching `p·R`; for BLS12-381 it
//! is [`crate::params::FP_WIDE_HEADROOM`] = 9 (pinned against the
//! runtime-derived value at start-up). The deepest accumulation in the
//! tower (an `Fp12` Karatsuba `c1` built from `Fp6` cross terms) sums up
//! to [`MAX_WIDE_TERMS`] = 12 product magnitudes, which is *more* than
//! the headroom — hence the checked mod-`p·R` ops everywhere instead of
//! raw adds. The max-operand property tests (`lazy_tower_props`) drive
//! `p−1` coefficients through every op to pin exactly this.

use vchain_bigint::DoubleWide;

use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::fp6::Fp6;
use crate::params::fp_params;
use crate::stats;

/// The deepest unreduced accumulation any tower output coefficient sees,
/// in units of `< p²` product magnitudes: the `Fp12` Karatsuba `c1`
/// coefficient `sum − aa − bb`, whose `Fp6`-level cross terms are
/// themselves three-product accumulations. Exceeds
/// [`crate::params::FP_WIDE_HEADROOM`], which is why the wide ops
/// renormalize modulo `p·R` on every add instead of relying on raw-add
/// headroom.
pub const MAX_WIDE_TERMS: u64 = 12;

/// An unreduced base-field value: a [`DoubleWide`] accumulator in
/// `[0, p·R)` whose reduction yields a canonical Montgomery-form [`Fp`].
#[derive(Clone, Copy)]
pub(crate) struct FpWide(DoubleWide<6>);

impl FpWide {
    /// Full-width product of two reduced elements, no reduction.
    #[inline]
    pub(crate) fn mul(a: &Fp, b: &Fp) -> Self {
        Self(fp_params().mul_wide(&a.0, &b.0))
    }

    /// Wide addition modulo `p·R`.
    #[inline]
    pub(crate) fn add(&self, rhs: &Self) -> Self {
        Self(fp_params().wide_add(&self.0, &rhs.0))
    }

    /// Wide subtraction modulo `p·R`.
    #[inline]
    pub(crate) fn sub(&self, rhs: &Self) -> Self {
        Self(fp_params().wide_sub(&self.0, &rhs.0))
    }

    /// Wide doubling modulo `p·R`.
    #[inline]
    pub(crate) fn double(&self) -> Self {
        Self(fp_params().wide_double(&self.0))
    }

    /// Close the accumulator: one Montgomery reduction to a canonical
    /// Montgomery-form element. This is the *only* place the lazy path
    /// reduces, so the per-thread counter lives here.
    #[inline]
    pub(crate) fn reduce(&self) -> Fp {
        stats::MONTGOMERY_REDUCTIONS.with(|c| c.set(c.get() + 1));
        Fp(fp_params().montgomery_reduce(&self.0))
    }
}

/// An unreduced `Fp2` value (componentwise [`FpWide`]).
#[derive(Clone, Copy)]
pub(crate) struct Fp2Wide {
    pub(crate) c0: FpWide,
    pub(crate) c1: FpWide,
}

impl Fp2Wide {
    /// Unreduced Karatsuba product: 3 wide base-field muls, 0 reductions.
    #[inline]
    pub(crate) fn mul(a: &Fp2, b: &Fp2) -> Self {
        let v0 = FpWide::mul(&a.c0, &b.c0);
        let v1 = FpWide::mul(&a.c1, &b.c1);
        let s = FpWide::mul(&(a.c0 + a.c1), &(b.c0 + b.c1));
        // (a0 + a1 u)(b0 + b1 u) = (v0 − v1) + (s − v0 − v1) u
        Self { c0: v0.sub(&v1), c1: s.sub(&v0).sub(&v1) }
    }

    /// Unreduced squaring: `(a+b)(a−b) + 2ab·u`, 2 wide muls.
    #[inline]
    pub(crate) fn square(a: &Fp2) -> Self {
        let ab = FpWide::mul(&a.c0, &a.c1);
        Self { c0: FpWide::mul(&(a.c0 + a.c1), &(a.c0 - a.c1)), c1: ab.double() }
    }

    /// Multiply by the sextic non-residue `ξ = 1 + u` (adds only).
    #[inline]
    pub(crate) fn mul_by_xi(&self) -> Self {
        Self { c0: self.c0.sub(&self.c1), c1: self.c0.add(&self.c1) }
    }

    /// Componentwise wide addition.
    #[inline]
    pub(crate) fn add(&self, rhs: &Self) -> Self {
        Self { c0: self.c0.add(&rhs.c0), c1: self.c1.add(&rhs.c1) }
    }

    /// Componentwise wide subtraction.
    #[inline]
    pub(crate) fn sub(&self, rhs: &Self) -> Self {
        Self { c0: self.c0.sub(&rhs.c0), c1: self.c1.sub(&rhs.c1) }
    }

    /// Componentwise wide doubling.
    #[inline]
    pub(crate) fn double(&self) -> Self {
        Self { c0: self.c0.double(), c1: self.c1.double() }
    }

    /// Close both coefficients: 2 reductions.
    #[inline]
    pub(crate) fn reduce(&self) -> Fp2 {
        Fp2::new(self.c0.reduce(), self.c1.reduce())
    }
}

/// The shared `Fp4 = Fp2[s]/(s² − ξ)` squaring pair of the Granger–Scott
/// and Karabina cyclotomic squarings: `(x + y·s)² = (x² + ξy²) +
/// ((x+y)² − x² − y²)·s`, closed with 4 reductions instead of the eager 6.
#[inline]
pub(crate) fn fp4_square(x: &Fp2, y: &Fp2) -> (Fp2, Fp2) {
    let x2 = Fp2Wide::square(x);
    let y2 = Fp2Wide::square(y);
    let s = Fp2Wide::square(&(*x + *y));
    (x2.add(&y2.mul_by_xi()).reduce(), s.sub(&x2).sub(&y2).reduce())
}

/// An unreduced `Fp6` value (componentwise [`Fp2Wide`]).
#[derive(Clone, Copy)]
pub(crate) struct Fp6Wide {
    pub(crate) c0: Fp2Wide,
    pub(crate) c1: Fp2Wide,
    pub(crate) c2: Fp2Wide,
}

impl Fp6Wide {
    /// Unreduced Karatsuba/Toom product: 6 unreduced `Fp2` muls combined
    /// entirely double-width, 0 reductions.
    pub(crate) fn mul(a: &Fp6, b: &Fp6) -> Self {
        let v0 = Fp2Wide::mul(&a.c0, &b.c0);
        let v1 = Fp2Wide::mul(&a.c1, &b.c1);
        let v2 = Fp2Wide::mul(&a.c2, &b.c2);
        let m12 = Fp2Wide::mul(&(a.c1 + a.c2), &(b.c1 + b.c2)).sub(&v1).sub(&v2);
        let m01 = Fp2Wide::mul(&(a.c0 + a.c1), &(b.c0 + b.c1)).sub(&v0).sub(&v1);
        let m02 = Fp2Wide::mul(&(a.c0 + a.c2), &(b.c0 + b.c2)).sub(&v0).sub(&v2);
        Self { c0: v0.add(&m12.mul_by_xi()), c1: m01.add(&v2.mul_by_xi()), c2: m02.add(&v1) }
    }

    /// Unreduced CH-SQR2 squaring: 2 unreduced muls + 3 unreduced squares.
    pub(crate) fn square(a: &Fp6) -> Self {
        let s0 = Fp2Wide::square(&a.c0);
        let s1 = Fp2Wide::mul(&a.c0, &a.c1).double();
        let s2 = Fp2Wide::square(&(a.c0 - a.c1 + a.c2));
        let s3 = Fp2Wide::mul(&a.c1, &a.c2).double();
        let s4 = Fp2Wide::square(&a.c2);
        Self {
            c0: s0.add(&s3.mul_by_xi()),
            c1: s1.add(&s4.mul_by_xi()),
            c2: s1.add(&s2).add(&s3).sub(&s0).sub(&s4),
        }
    }

    /// Unreduced sparse product with `b0 + b1·v`: 5 unreduced `Fp2` muls.
    pub(crate) fn mul_by_01(a: &Fp6, b0: &Fp2, b1: &Fp2) -> Self {
        let t0 = Fp2Wide::mul(&a.c0, b0);
        let t1 = Fp2Wide::mul(&a.c1, b1);
        Self {
            c0: t0.add(&Fp2Wide::mul(&a.c2, b1).mul_by_xi()),
            c1: Fp2Wide::mul(&(a.c0 + a.c1), &(*b0 + *b1)).sub(&t0).sub(&t1),
            c2: Fp2Wide::mul(&a.c2, b0).add(&t1),
        }
    }

    /// Unreduced sparse product with `b1·v` alone: 3 unreduced `Fp2` muls.
    pub(crate) fn mul_by_1(a: &Fp6, b1: &Fp2) -> Self {
        Self {
            c0: Fp2Wide::mul(&a.c2, b1).mul_by_xi(),
            c1: Fp2Wide::mul(&a.c0, b1),
            c2: Fp2Wide::mul(&a.c1, b1),
        }
    }

    /// Multiply by `v` (cyclic shift with `v³ = ξ`; adds only).
    #[inline]
    pub(crate) fn mul_by_v(&self) -> Self {
        Self { c0: self.c2.mul_by_xi(), c1: self.c0, c2: self.c1 }
    }

    /// Componentwise wide addition.
    #[inline]
    pub(crate) fn add(&self, rhs: &Self) -> Self {
        Self { c0: self.c0.add(&rhs.c0), c1: self.c1.add(&rhs.c1), c2: self.c2.add(&rhs.c2) }
    }

    /// Componentwise wide subtraction.
    #[inline]
    pub(crate) fn sub(&self, rhs: &Self) -> Self {
        Self { c0: self.c0.sub(&rhs.c0), c1: self.c1.sub(&rhs.c1), c2: self.c2.sub(&rhs.c2) }
    }

    /// Componentwise wide doubling.
    #[inline]
    pub(crate) fn double(&self) -> Self {
        Self { c0: self.c0.double(), c1: self.c1.double(), c2: self.c2.double() }
    }

    /// Close all six coefficients: 6 reductions.
    #[inline]
    pub(crate) fn reduce(&self) -> Fp6 {
        Fp6::new(self.c0.reduce(), self.c1.reduce(), self.c2.reduce())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field;
    use crate::params;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn headroom_constants_match_derivation() {
        assert_eq!(fp_params().wide_headroom(), params::FP_WIDE_HEADROOM);
        // the tower's deepest accumulation really does exceed the raw-add
        // headroom — the mod-p·R fixups are load-bearing, not paranoia
        // (compared against the runtime derivation, not the constant, so
        // the assertion can actually fail if the modulus ever changes)
        assert!(MAX_WIDE_TERMS > fp_params().wide_headroom());
    }

    #[test]
    fn wide_ops_match_reduced_ops() {
        let mut r = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let a = Fp::random(&mut r);
            let b = Fp::random(&mut r);
            let c = Fp::random(&mut r);
            let d = Fp::random(&mut r);
            let ab = FpWide::mul(&a, &b);
            let cd = FpWide::mul(&c, &d);
            assert_eq!(ab.reduce(), a * b);
            assert_eq!(ab.add(&cd).reduce(), a * b + c * d);
            assert_eq!(ab.sub(&cd).reduce(), a * b - c * d);
            assert_eq!(ab.double().reduce(), (a * b).double());
        }
    }

    #[test]
    fn fp4_square_matches_formula() {
        let mut r = StdRng::seed_from_u64(18);
        for _ in 0..20 {
            let x = Fp2::random(&mut r);
            let y = Fp2::random(&mut r);
            let (c0, c1) = fp4_square(&x, &y);
            let x2 = x.square();
            let y2 = y.square();
            assert_eq!(c0, x2 + y2.mul_by_xi());
            assert_eq!(c1, (x + y).square() - x2 - y2);
        }
    }
}
