//! The quadratic extension `Fp2 = Fp[u]/(u² + 1)`.
//!
//! `p ≡ 3 (mod 4)` (asserted in [`crate::params`]), so `−1` is a
//! non-residue and the extension is a field.

use core::fmt;

use rand::Rng;

use crate::field::Field;
use crate::fp::Fp;

/// An element `c0 + c1·u` of `Fp2`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp2 {
    /// The constant coefficient.
    pub c0: Fp,
    /// The coefficient of `u`.
    pub c1: Fp,
}

impl Fp2 {
    /// Assemble from coefficients.
    pub const fn new(c0: Fp, c1: Fp) -> Self {
        Self { c0, c1 }
    }

    /// Embed a base-field element.
    pub fn from_fp(c0: Fp) -> Self {
        Self { c0, c1: Fp::zero() }
    }

    /// Embed a small integer.
    pub fn from_u64(v: u64) -> Self {
        Self::from_fp(Fp::from_u64(v))
    }

    /// The sextic non-residue `ξ = 1 + u` used to define `Fp12`.
    pub fn xi() -> Self {
        Self { c0: Fp::one(), c1: Fp::one() }
    }

    /// Galois conjugation `c0 − c1·u`, which is also the `p`-power Frobenius
    /// on `Fp2` (because `u^p = −u` when `p ≡ 3 mod 4`).
    pub fn conjugate(&self) -> Self {
        Self { c0: self.c0, c1: Field::neg(&self.c1) }
    }

    /// Multiply by the non-residue ξ = 1 + u:
    /// `(c0 + c1·u)(1 + u) = (c0 − c1) + (c0 + c1)·u`.
    pub fn mul_by_xi(&self) -> Self {
        Self { c0: self.c0 - self.c1, c1: self.c0 + self.c1 }
    }

    /// Scale by a base-field element.
    pub fn mul_by_fp(&self, k: &Fp) -> Self {
        Self { c0: Field::mul(&self.c0, k), c1: Field::mul(&self.c1, k) }
    }

    /// `self * 3` (used in tangent slopes).
    pub fn triple(&self) -> Self {
        Field::add(&self.double(), self)
    }

    /// A uniformly random element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self { c0: Fp::random(rng), c1: Fp::random(rng) }
    }

    /// Eager-reduction reference multiplication: Karatsuba over reduced
    /// `Fp` values, 3 Montgomery reductions. Kept alongside the lazy
    /// production path ([`Field::mul`]) as the byte-equality oracle for
    /// the property tests and the `*_eager` benchmark twins.
    pub fn mul_eager(&self, rhs: &Self) -> Self {
        crate::stats::count_eager_reductions(3);
        let v0 = Field::mul(&self.c0, &rhs.c0);
        let v1 = Field::mul(&self.c1, &rhs.c1);
        let s = Field::mul(&(self.c0 + self.c1), &(rhs.c0 + rhs.c1));
        Self { c0: v0 - v1, c1: s - v0 - v1 }
    }

    /// Eager-reduction reference squaring (2 Montgomery reductions); see
    /// [`Fp2::mul_eager`].
    pub fn square_eager(&self) -> Self {
        crate::stats::count_eager_reductions(2);
        let ab = Field::mul(&self.c0, &self.c1);
        Self { c0: Field::mul(&(self.c0 + self.c1), &(self.c0 - self.c1)), c1: ab.double() }
    }

    /// Canonical little-endian bytes (`c0 || c1`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.c0.to_bytes();
        out.extend_from_slice(&self.c1.to_bytes());
        out
    }
}

impl Field for Fp2 {
    fn zero() -> Self {
        Self { c0: Fp::zero(), c1: Fp::zero() }
    }

    fn one() -> Self {
        Self { c0: Fp::one(), c1: Fp::zero() }
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    #[inline]
    fn add(&self, rhs: &Self) -> Self {
        Self { c0: self.c0 + rhs.c0, c1: self.c1 + rhs.c1 }
    }

    #[inline]
    fn sub(&self, rhs: &Self) -> Self {
        Self { c0: self.c0 - rhs.c0, c1: self.c1 - rhs.c1 }
    }

    #[inline]
    fn neg(&self) -> Self {
        Self { c0: Field::neg(&self.c0), c1: Field::neg(&self.c1) }
    }

    #[inline]
    fn mul(&self, rhs: &Self) -> Self {
        // Lazy Karatsuba: cross terms accumulate double-width, one
        // Montgomery reduction per output coefficient (2 instead of 3).
        crate::lazy::Fp2Wide::mul(self, rhs).reduce()
    }

    fn square(&self) -> Self {
        // (a + bu)² = (a+b)(a−b) + 2ab·u via two *fused* Montgomery
        // multiplications. Squaring is the one Fp2 op where the lazy path
        // saves no reductions (2 → 2), so the split mul_wide + reduce form
        // only adds glue; the standalone op stays fused and the wide variant
        // ([`crate::lazy::Fp2Wide::square`]) is reserved for Fp6/Fp4
        // interiors where its unreduced output feeds further accumulation.
        let ab = Field::mul(&self.c0, &self.c1);
        Self { c0: Field::mul(&(self.c0 + self.c1), &(self.c0 - self.c1)), c1: ab.double() }
    }

    fn to_canonical_bytes(&self) -> Vec<u8> {
        self.to_bytes()
    }

    fn inverse(&self) -> Option<Self> {
        // (a + bu)^{-1} = (a - bu) / (a² + b²)
        let norm = self.c0.square() + self.c1.square();
        let inv = norm.inverse()?;
        Some(Self { c0: Field::mul(&self.c0, &inv), c1: Field::mul(&Field::neg(&self.c1), &inv) })
    }
}

impl fmt::Debug for Fp2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp2({:?} + {:?}·u)", self.c0, self.c1)
    }
}

crate::impl_field_ops!(Fp2);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn u_squared_is_minus_one() {
        let u = Fp2::new(Fp::zero(), Fp::one());
        assert_eq!(u.square(), Field::neg(&Fp2::one()));
    }

    #[test]
    fn field_axioms() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp2::random(&mut r);
            let b = Fp2::random(&mut r);
            let c = Fp2::random(&mut r);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a.square(), a * a);
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fp2::one());
            }
        }
    }

    #[test]
    fn conjugate_is_frobenius() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        let p_limbs = params::fp_params().modulus.0;
        assert_eq!(a.conjugate(), a.pow_limbs(&p_limbs));
    }

    #[test]
    fn mul_by_xi_matches_mul() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        assert_eq!(a.mul_by_xi(), a * Fp2::xi());
    }

    #[test]
    fn xi_is_not_a_cube_or_square() {
        // ξ generates the right extension: ξ^((p²−1)/2) ≠ 1 and ξ^((p²−1)/3) ≠ 1.
        // We verify the weaker sanity check ξ ≠ 0, 1 and leave irreducibility
        // to the Fp12 axioms test.
        assert!(!Fp2::xi().is_zero());
        assert_ne!(Fp2::xi(), Fp2::one());
    }
}
