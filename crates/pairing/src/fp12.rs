//! The full extension `Fp12 = Fp2[w]/(w⁶ − ξ)`, ξ = 1 + u.
//!
//! We use the *direct* degree-6 extension of `Fp2` rather than the usual
//! 2-3-2 tower: multiplication is schoolbook with the reduction
//! `w⁶ ↦ ξ`, the `p`-power Frobenius is coefficient-wise conjugation times
//! the precomputed constants `γⁱ = ξ^{i(p−1)/6}`, and inversion is a small
//! extended-Euclid over `Fp2[w]`. The subfield `Fp6 = Fp2[w²]` occupies the
//! even coefficients, which makes the `p⁶`-Frobenius (conjugation) a sign
//! flip of the odd coefficients.

use core::fmt;
use std::sync::OnceLock;

use rand::Rng;

use crate::field::Field;
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::params;

/// An element `Σ cᵢ wⁱ` (i = 0..5) of `Fp12`, coefficients in `Fp2`.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Fp12 {
    pub c: [Fp2; 6],
}

/// Frobenius coefficients `γⁱ = ξ^{i(p−1)/6}` for i = 0..5.
static FROBENIUS_GAMMA: OnceLock<[Fp2; 6]> = OnceLock::new();

fn frobenius_gamma() -> &'static [Fp2; 6] {
    FROBENIUS_GAMMA.get_or_init(|| {
        let g1 = Fp2::xi().pow_limbs(&params::derived().p_minus_1_over_6);
        let mut g = [Fp2::one(); 6];
        for i in 1..6 {
            g[i] = g[i - 1] * g1;
        }
        g
    })
}

impl Fp12 {
    pub fn new(c: [Fp2; 6]) -> Self {
        Self { c }
    }

    /// Embed an `Fp2` element as the constant coefficient.
    pub fn from_fp2(c0: Fp2) -> Self {
        let mut c = [Fp2::zero(); 6];
        c[0] = c0;
        Self { c }
    }

    /// Embed a base-field element.
    pub fn from_fp(v: Fp) -> Self {
        Self::from_fp2(Fp2::from_fp(v))
    }

    /// Build the sparse Miller-loop line element `c0 + c2·w² + c3·w³`.
    pub fn from_line(c0: Fp2, c2: Fp2, c3: Fp2) -> Self {
        let mut c = [Fp2::zero(); 6];
        c[0] = c0;
        c[2] = c2;
        c[3] = c3;
        Self { c }
    }

    /// The conjugation over `Fp6 = Fp2[w²]`: negates odd coefficients. This
    /// equals the `p⁶`-power Frobenius, and for unitary elements (after the
    /// easy part of the final exponentiation) it equals inversion.
    pub fn conjugate(&self) -> Self {
        let mut c = self.c;
        for i in [1, 3, 5] {
            c[i] = Field::neg(&c[i]);
        }
        Self { c }
    }

    /// The `p`-power Frobenius endomorphism.
    pub fn frobenius(&self) -> Self {
        let g = frobenius_gamma();
        let mut c = [Fp2::zero(); 6];
        for i in 0..6 {
            c[i] = self.c[i].conjugate() * g[i];
        }
        Self { c }
    }

    /// Exponentiation by a scalar field element (for `Gt` arithmetic).
    pub fn pow_fr(&self, e: &crate::fp::Fr) -> Self {
        self.pow_limbs(&e.to_uint().0)
    }

    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut c = [Fp2::zero(); 6];
        for ci in &mut c {
            *ci = Fp2::random(rng);
        }
        Self { c }
    }

    /// Canonical little-endian bytes of all 12 `Fp` coefficients.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 * Fp::BYTES);
        for ci in &self.c {
            out.extend_from_slice(&ci.to_bytes());
        }
        out
    }
}

impl Field for Fp12 {
    fn zero() -> Self {
        Self { c: [Fp2::zero(); 6] }
    }

    fn one() -> Self {
        Self::from_fp2(Fp2::one())
    }

    fn is_zero(&self) -> bool {
        self.c.iter().all(Fp2::is_zero)
    }

    fn add(&self, rhs: &Self) -> Self {
        Self { c: core::array::from_fn(|i| self.c[i] + rhs.c[i]) }
    }

    fn sub(&self, rhs: &Self) -> Self {
        Self { c: core::array::from_fn(|i| self.c[i] - rhs.c[i]) }
    }

    fn neg(&self) -> Self {
        Self { c: core::array::from_fn(|i| Field::neg(&self.c[i])) }
    }

    fn mul(&self, rhs: &Self) -> Self {
        // Schoolbook product of degree-5 polynomials, then reduce w^6 = ξ.
        let mut wide = [Fp2::zero(); 11];
        for i in 0..6 {
            if self.c[i].is_zero() {
                continue;
            }
            for j in 0..6 {
                if rhs.c[j].is_zero() {
                    continue;
                }
                wide[i + j] += Field::mul(&self.c[i], &rhs.c[j]);
            }
        }
        let mut c = [Fp2::zero(); 6];
        c.copy_from_slice(&wide[..6]);
        for k in 6..11 {
            c[k - 6] += wide[k].mul_by_xi();
        }
        Self { c }
    }

    fn to_canonical_bytes(&self) -> Vec<u8> {
        self.to_bytes()
    }

    fn inverse(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        // Extended Euclid in Fp2[w] between self (deg <= 5) and m = w^6 - ξ.
        // Returns u with u·self ≡ gcd (a unit) mod m.
        type Poly = Vec<Fp2>;

        fn deg(p: &Poly) -> Option<usize> {
            p.iter().rposition(|c| !c.is_zero())
        }

        fn trim(mut p: Poly) -> Poly {
            while p.last().is_some_and(Fp2::is_zero) {
                p.pop();
            }
            p
        }

        fn divrem(num: &Poly, den: &Poly) -> (Poly, Poly) {
            let dd = deg(den).expect("division by zero poly");
            let lead_inv = den[dd].inverse().expect("leading coeff invertible");
            let mut rem = num.clone();
            let mut quot = vec![Fp2::zero(); num.len().saturating_sub(dd) + 1];
            while let Some(dr) = deg(&rem) {
                if dr < dd {
                    break;
                }
                let q = Field::mul(&rem[dr], &lead_inv);
                quot[dr - dd] = q;
                for i in 0..=dd {
                    rem[dr - dd + i] -= Field::mul(&q, &den[i]);
                }
            }
            (trim(quot), trim(rem))
        }

        fn poly_mul(a: &Poly, b: &Poly) -> Poly {
            if a.is_empty() || b.is_empty() {
                return Vec::new();
            }
            let mut out = vec![Fp2::zero(); a.len() + b.len() - 1];
            for (i, ai) in a.iter().enumerate() {
                for (j, bj) in b.iter().enumerate() {
                    out[i + j] += Field::mul(ai, bj);
                }
            }
            trim(out)
        }

        fn poly_sub(a: &Poly, b: &Poly) -> Poly {
            let mut out = vec![Fp2::zero(); a.len().max(b.len())];
            for (i, o) in out.iter_mut().enumerate() {
                let av = a.get(i).copied().unwrap_or_else(Fp2::zero);
                let bv = b.get(i).copied().unwrap_or_else(Fp2::zero);
                *o = av - bv;
            }
            trim(out)
        }

        // modulus m(w) = w^6 - ξ
        let mut m = vec![Fp2::zero(); 7];
        m[0] = Field::neg(&Fp2::xi());
        m[6] = Fp2::one();

        let a: Poly = trim(self.c.to_vec());

        // Track Bézout coefficient of `a` only: u0·a ≡ r0 (mod m)
        let mut r0 = a;
        let mut r1 = m;
        let mut u0: Poly = vec![Fp2::one()];
        let mut u1: Poly = Vec::new();

        while deg(&r1).is_some() {
            let (q, r) = divrem(&r0, &r1);
            let u = poly_sub(&u0, &poly_mul(&q, &u1));
            r0 = std::mem::replace(&mut r1, r);
            u0 = std::mem::replace(&mut u1, u);
        }
        // r0 is a non-zero constant (m irreducible, a != 0)
        debug_assert_eq!(deg(&r0), Some(0));
        let ginv = r0[0].inverse()?;
        let mut c = [Fp2::zero(); 6];
        for (i, ui) in u0.iter().enumerate() {
            // u0 may briefly have degree > 5 before reduction mod m never
            // happened; in the standard Euclid run deg(u0) < deg(m) = 6.
            debug_assert!(i < 6, "Bézout coefficient exceeded degree 5");
            c[i] = Field::mul(ui, &ginv);
        }
        Some(Self { c })
    }
}

impl fmt::Debug for Fp12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp12({:?}, …)", self.c[0])
    }
}

crate::impl_field_ops!(Fp12);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn w() -> Fp12 {
        let mut c = [Fp2::zero(); 6];
        c[1] = Fp2::one();
        Fp12 { c }
    }

    #[test]
    fn w_sixth_is_xi() {
        let w6 = w().pow_limbs(&[6]);
        assert_eq!(w6, Fp12::from_fp2(Fp2::xi()));
    }

    #[test]
    fn field_axioms() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Fp12::random(&mut r);
            let b = Fp12::random(&mut r);
            let c = Fp12::random(&mut r);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a * Fp12::one(), a);
        }
    }

    #[test]
    fn inverse_round_trip() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Fp12::random(&mut r);
            let inv = a.inverse().unwrap();
            assert_eq!(a * inv, Fp12::one());
        }
        assert!(Fp12::zero().inverse().is_none());
        // sparse elements too
        let line = Fp12::from_line(Fp2::from_u64(3), Fp2::xi(), Fp2::from_u64(9));
        assert_eq!(line * line.inverse().unwrap(), Fp12::one());
    }

    #[test]
    fn frobenius_is_p_power() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let p_limbs = params::fp_params().modulus.0;
        assert_eq!(a.frobenius(), a.pow_limbs(&p_limbs));
    }

    #[test]
    fn frobenius_order_twelve() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let mut b = a;
        for _ in 0..12 {
            b = b.frobenius();
        }
        assert_eq!(a, b);
        // six applications equal conjugation
        let mut c6 = a;
        for _ in 0..6 {
            c6 = c6.frobenius();
        }
        assert_eq!(c6, a.conjugate());
    }

    #[test]
    fn conjugate_fixes_even_subfield() {
        let mut r = rng();
        let mut c = [Fp2::zero(); 6];
        c[0] = Fp2::random(&mut r);
        c[2] = Fp2::random(&mut r);
        c[4] = Fp2::random(&mut r);
        let a = Fp12 { c };
        assert_eq!(a.conjugate(), a);
    }
}
