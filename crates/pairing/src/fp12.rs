//! The full extension `Fp12 = Fp6[w]/(w² − v)` — the top of the 2-3-2
//! tower `Fp2 → Fp6 → Fp12` (with `v³ = ξ`, so `w⁶ = ξ` exactly as in the
//! flat representation `Fp2[w]/(w⁶ − ξ)` this replaced).
//!
//! The tower gives closed-form fast paths everywhere the flat representation
//! needed generic polynomial arithmetic:
//!
//! * **mul** — Karatsuba over `Fp6` (18 `Fp2` muls vs 36 schoolbook);
//! * **square** — complex squaring (2 `Fp6` muls);
//! * **inverse** — norm descent `(c0 − c1·w)/(c0² − v·c1²)` down the tower,
//!   ending in one base-field binary-GCD inversion (the flat code ran
//!   extended Euclid over `Fp2[w]`, allocating on every step);
//! * **sparse line mul** — [`Fp12::mul_by_line`] folds a Miller-loop line
//!   `l0 + l2·w² + l3·w³` in 13 `Fp2` muls;
//! * **cyclotomic squaring** — Granger–Scott `Fp4`-based squaring for
//!   elements of the cyclotomic subgroup (post easy-part), 9 `Fp2`
//!   squarings each, powering the final exponentiation.
//!
//! Flat coefficients `Σ aᵢ·wⁱ` remain the canonical *serialization* order
//! ([`Fp12::to_bytes`]), and [`Fp12::coeffs`]/[`Fp12::from_coeffs`] convert
//! losslessly, so the tower is observationally identical to the old layout.

use core::fmt;
use std::sync::OnceLock;

use rand::Rng;

use crate::field::Field;
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::fp6::Fp6;
use crate::params;

/// An element `c0 + c1·w` of `Fp12`, coefficients in `Fp6`.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Fp12 {
    /// The constant coefficient.
    pub c0: Fp6,
    /// The coefficient of `w`.
    pub c1: Fp6,
}

/// Frobenius coefficients `γⁱ = ξ^{i(p−1)/6}` for i = 0..5.
static FROBENIUS_GAMMA: OnceLock<[Fp2; 6]> = OnceLock::new();

fn frobenius_gamma() -> &'static [Fp2; 6] {
    FROBENIUS_GAMMA.get_or_init(|| {
        let g1 = Fp2::xi().pow_limbs(&params::derived().p_minus_1_over_6);
        let mut g = [Fp2::one(); 6];
        for i in 1..6 {
            g[i] = g[i - 1] * g1;
        }
        g
    })
}

impl Fp12 {
    /// Assemble from coefficients.
    pub fn new(c0: Fp6, c1: Fp6) -> Self {
        Self { c0, c1 }
    }

    /// Build from flat coefficients `Σ aᵢ·wⁱ` (the pre-tower representation).
    /// Even powers land in `c0` (via `v = w²`), odd powers in `c1`.
    pub fn from_coeffs(a: [Fp2; 6]) -> Self {
        Self { c0: Fp6::new(a[0], a[2], a[4]), c1: Fp6::new(a[1], a[3], a[5]) }
    }

    /// The flat coefficients `[a₀, …, a₅]` of `Σ aᵢ·wⁱ`.
    pub fn coeffs(&self) -> [Fp2; 6] {
        [self.c0.c0, self.c1.c0, self.c0.c1, self.c1.c1, self.c0.c2, self.c1.c2]
    }

    /// Embed an `Fp2` element as the constant coefficient.
    pub fn from_fp2(c0: Fp2) -> Self {
        Self { c0: Fp6::from_fp2(c0), c1: Fp6::zero() }
    }

    /// Embed a base-field element.
    pub fn from_fp(v: Fp) -> Self {
        Self::from_fp2(Fp2::from_fp(v))
    }

    /// Build the sparse Miller-loop line element `l0 + l2·w² + l3·w³`.
    pub fn from_line(l0: Fp2, l2: Fp2, l3: Fp2) -> Self {
        Self { c0: Fp6::new(l0, l2, Fp2::zero()), c1: Fp6::new(Fp2::zero(), l3, Fp2::zero()) }
    }

    /// Sparse product with a Miller-loop line `l0 + l2·w² + l3·w³`
    /// (13 `Fp2` muls instead of a dense 18).
    pub fn mul_by_line(&self, l0: &Fp2, l2: &Fp2, l3: &Fp2) -> Self {
        // line = L0 + L1·w with L0 = l0 + l2·v, L1 = l3·v  (w³ = v·w).
        let t0 = self.c0.mul_by_01(l0, l2);
        let t1 = self.c1.mul_by_1(l3);
        let c1 = Field::add(&self.c0, &self.c1).mul_by_01(l0, &(*l2 + *l3)) - t0 - t1;
        Self { c0: t0 + t1.mul_by_v(), c1 }
    }

    /// The conjugation over `Fp6` (negates the odd flat coefficients). This
    /// equals the `p⁶`-power Frobenius, and for unitary elements (after the
    /// easy part of the final exponentiation) it equals inversion.
    pub fn conjugate(&self) -> Self {
        Self { c0: self.c0, c1: Field::neg(&self.c1) }
    }

    /// The `p`-power Frobenius endomorphism: flat coefficient `aᵢ` maps to
    /// `conj(aᵢ)·γⁱ`.
    pub fn frobenius(&self) -> Self {
        let g = frobenius_gamma();
        let a = self.coeffs();
        Self::from_coeffs(core::array::from_fn(|i| a[i].conjugate() * g[i]))
    }

    /// `p²`-power Frobenius (two applications of [`Fp12::frobenius`]).
    pub fn frobenius2(&self) -> Self {
        self.frobenius().frobenius()
    }

    /// Granger–Scott squaring for elements of the *cyclotomic subgroup*
    /// (`z^{p⁴−p²+1} = 1`, e.g. anything after the easy part of the final
    /// exponentiation). Roughly 3× cheaper than a generic square; the
    /// precondition is NOT checked.
    pub fn cyclotomic_square(&self) -> Self {
        // Decompose over Fp4 = Fp2[s]/(s² − ξ) with s = w³:
        // z = A + B·w + C·w², A = (a0, a3), B = (a1, a4), C = (a2, a5).
        let a = self.coeffs();
        let sq = |x: &Fp2, y: &Fp2| -> (Fp2, Fp2) {
            // (x + y·s)² = (x² + ξ·y²) + ((x+y)² − x² − y²)·s
            let x2 = x.square();
            let y2 = y.square();
            ((x2 + y2.mul_by_xi()), ((*x + *y).square() - x2 - y2))
        };
        let (t00, t01) = sq(&a[0], &a[3]); // A²
        let (t10, t11) = sq(&a[1], &a[4]); // B²
        let (t20, t21) = sq(&a[2], &a[5]); // C²
        let three = |t: &Fp2| t.double() + *t;
        // A' = 3A² − 2Ā ; B' = 3s·C² + 2B̄ ; C' = 3B² − 2C̄
        let out = [
            three(&t00) - a[0].double(),
            three(&t21.mul_by_xi()) + a[1].double(),
            three(&t10) - a[2].double(),
            three(&t01) + a[3].double(),
            three(&t20) - a[4].double(),
            three(&t11) + a[5].double(),
        ];
        Self::from_coeffs(out)
    }

    /// Exponentiation by a little-endian limb slice using cyclotomic
    /// squarings. Only valid for elements of the cyclotomic subgroup.
    pub fn cyclotomic_pow_limbs(&self, exp: &[u64]) -> Self {
        let mut res = Self::one();
        let mut seen_bit = false;
        for &limb in exp.iter().rev() {
            if !seen_bit && limb == 0 {
                continue;
            }
            for bit in (0..64).rev() {
                if seen_bit {
                    res = res.cyclotomic_square();
                }
                if (limb >> bit) & 1 == 1 {
                    res = Field::mul(&res, self);
                    seen_bit = true;
                }
            }
        }
        res
    }

    /// `z^x` for the (negative) BLS parameter `x`: cyclotomic power by `|x|`
    /// followed by conjugation. Cyclotomic-subgroup elements only.
    pub fn cyclotomic_pow_x(&self) -> Self {
        const { assert!(params::BLS_X_IS_NEGATIVE) };
        self.cyclotomic_pow_limbs(&[params::BLS_X]).conjugate()
    }

    /// Generic exponentiation by a scalar field element. Works for *any*
    /// `Fp12` element; [`crate::Gt`] overrides this with the cyclotomic
    /// fast path, which is only valid inside the cyclotomic subgroup.
    pub fn pow_fr(&self, e: &crate::fp::Fr) -> Self {
        self.pow_limbs(&e.to_uint().0)
    }

    /// A uniformly random element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self { c0: Fp6::random(rng), c1: Fp6::random(rng) }
    }

    /// Canonical little-endian bytes of all 12 `Fp` coefficients, in *flat*
    /// coefficient order (unchanged from the pre-tower representation).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 * Fp::BYTES);
        for ci in &self.coeffs() {
            out.extend_from_slice(&ci.to_bytes());
        }
        out
    }
}

impl Field for Fp12 {
    fn zero() -> Self {
        Self { c0: Fp6::zero(), c1: Fp6::zero() }
    }

    fn one() -> Self {
        Self { c0: Fp6::one(), c1: Fp6::zero() }
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    #[inline]
    fn add(&self, rhs: &Self) -> Self {
        Self { c0: self.c0 + rhs.c0, c1: self.c1 + rhs.c1 }
    }

    #[inline]
    fn sub(&self, rhs: &Self) -> Self {
        Self { c0: self.c0 - rhs.c0, c1: self.c1 - rhs.c1 }
    }

    #[inline]
    fn neg(&self) -> Self {
        Self { c0: Field::neg(&self.c0), c1: Field::neg(&self.c1) }
    }

    fn mul(&self, rhs: &Self) -> Self {
        // Karatsuba over Fp6 with w² = v.
        let aa = Field::mul(&self.c0, &rhs.c0);
        let bb = Field::mul(&self.c1, &rhs.c1);
        let sum = Field::mul(&(self.c0 + self.c1), &(rhs.c0 + rhs.c1));
        Self { c0: aa + bb.mul_by_v(), c1: sum - aa - bb }
    }

    fn square(&self) -> Self {
        // Complex squaring: (c0 + c1·w)² with w² = v, 2 Fp6 muls.
        let m = Field::mul(&self.c0, &self.c1);
        let t = Field::mul(&(self.c0 + self.c1), &(self.c0 + self.c1.mul_by_v()));
        Self { c0: t - m - m.mul_by_v(), c1: m.double() }
    }

    fn inverse(&self) -> Option<Self> {
        // Norm descent: (c0 + c1·w)⁻¹ = (c0 − c1·w)/(c0² − v·c1²).
        let norm = self.c0.square() - self.c1.square().mul_by_v();
        let t = norm.inverse()?;
        Some(Self { c0: Field::mul(&self.c0, &t), c1: Field::neg(&Field::mul(&self.c1, &t)) })
    }

    fn to_canonical_bytes(&self) -> Vec<u8> {
        self.to_bytes()
    }
}

impl fmt::Debug for Fp12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp12({:?}, …)", self.c0.c0)
    }
}

crate::impl_field_ops!(Fp12);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn w() -> Fp12 {
        let mut c = [Fp2::zero(); 6];
        c[1] = Fp2::one();
        Fp12::from_coeffs(c)
    }

    #[test]
    fn w_sixth_is_xi() {
        let w6 = w().pow_limbs(&[6]);
        assert_eq!(w6, Fp12::from_fp2(Fp2::xi()));
    }

    #[test]
    fn field_axioms() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Fp12::random(&mut r);
            let b = Fp12::random(&mut r);
            let c = Fp12::random(&mut r);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a * Fp12::one(), a);
            assert_eq!(a.square(), a * a);
        }
    }

    #[test]
    fn inverse_round_trip() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Fp12::random(&mut r);
            let inv = a.inverse().unwrap();
            assert_eq!(a * inv, Fp12::one());
        }
        assert!(Fp12::zero().inverse().is_none());
        // sparse elements too
        let line = Fp12::from_line(Fp2::from_u64(3), Fp2::xi(), Fp2::from_u64(9));
        assert_eq!(line * line.inverse().unwrap(), Fp12::one());
    }

    #[test]
    fn coeffs_round_trip() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        assert_eq!(Fp12::from_coeffs(a.coeffs()), a);
    }

    #[test]
    fn mul_by_line_matches_dense() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let (l0, l2, l3) = (Fp2::random(&mut r), Fp2::random(&mut r), Fp2::random(&mut r));
        assert_eq!(a.mul_by_line(&l0, &l2, &l3), Field::mul(&a, &Fp12::from_line(l0, l2, l3)));
    }

    #[test]
    fn frobenius_is_p_power() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let p_limbs = params::fp_params().modulus.0;
        assert_eq!(a.frobenius(), a.pow_limbs(&p_limbs));
    }

    #[test]
    fn frobenius_order_twelve() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let mut b = a;
        for _ in 0..12 {
            b = b.frobenius();
        }
        assert_eq!(a, b);
        // six applications equal conjugation
        let mut c6 = a;
        for _ in 0..6 {
            c6 = c6.frobenius();
        }
        assert_eq!(c6, a.conjugate());
    }

    #[test]
    fn conjugate_fixes_even_subfield() {
        let mut r = rng();
        let mut c = [Fp2::zero(); 6];
        c[0] = Fp2::random(&mut r);
        c[2] = Fp2::random(&mut r);
        c[4] = Fp2::random(&mut r);
        let a = Fp12::from_coeffs(c);
        assert_eq!(a.conjugate(), a);
    }

    #[test]
    fn cyclotomic_square_matches_square_in_subgroup() {
        // Project a random element into the cyclotomic subgroup via the easy
        // part of the final exponentiation: t = f^{(p⁶−1)(p²+1)}.
        let mut r = rng();
        let f = Fp12::random(&mut r);
        let t = Field::mul(&f.conjugate(), &f.inverse().unwrap());
        let t = Field::mul(&t.frobenius2(), &t);
        assert_eq!(t.cyclotomic_square(), t.square());
        assert_eq!(t.cyclotomic_pow_limbs(&[77]), t.pow_limbs(&[77]));
        // x-power: t^x = conj(t^{|x|})
        assert_eq!(t.cyclotomic_pow_x(), t.pow_limbs(&[params::BLS_X]).conjugate());
    }
}
