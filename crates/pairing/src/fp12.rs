//! The full extension `Fp12 = Fp6[w]/(w² − v)` — the top of the 2-3-2
//! tower `Fp2 → Fp6 → Fp12` (with `v³ = ξ`, so `w⁶ = ξ` exactly as in the
//! flat representation `Fp2[w]/(w⁶ − ξ)` this replaced).
//!
//! The tower gives closed-form fast paths everywhere the flat representation
//! needed generic polynomial arithmetic:
//!
//! * **mul** — Karatsuba over `Fp6` (18 `Fp2` muls vs 36 schoolbook);
//! * **square** — complex squaring (2 `Fp6` muls);
//! * **inverse** — norm descent `(c0 − c1·w)/(c0² − v·c1²)` down the tower,
//!   ending in one base-field binary-GCD inversion (the flat code ran
//!   extended Euclid over `Fp2[w]`, allocating on every step);
//! * **sparse line mul** — [`Fp12::mul_by_line`] folds a Miller-loop line
//!   `l0 + l2·w² + l3·w³` in 13 `Fp2` muls;
//! * **cyclotomic squaring** — Granger–Scott `Fp4`-based squaring for
//!   elements of the cyclotomic subgroup (post easy-part), 9 `Fp2`
//!   squarings each, powering the final exponentiation.
//!
//! Flat coefficients `Σ aᵢ·wⁱ` remain the canonical *serialization* order
//! ([`Fp12::to_bytes`]), and [`Fp12::coeffs`]/[`Fp12::from_coeffs`] convert
//! losslessly, so the tower is observationally identical to the old layout.

use core::fmt;
use std::sync::OnceLock;

use rand::Rng;

use crate::field::Field;
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::fp6::Fp6;
use crate::params;

/// An element `c0 + c1·w` of `Fp12`, coefficients in `Fp6`.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Fp12 {
    /// The constant coefficient.
    pub c0: Fp6,
    /// The coefficient of `w`.
    pub c1: Fp6,
}

/// Frobenius coefficients `γⁱ = ξ^{i(p−1)/6}` for i = 0..5.
static FROBENIUS_GAMMA: OnceLock<[Fp2; 6]> = OnceLock::new();

fn frobenius_gamma() -> &'static [Fp2; 6] {
    FROBENIUS_GAMMA.get_or_init(|| {
        let g1 = Fp2::xi().pow_limbs(&params::derived().p_minus_1_over_6);
        let mut g = [Fp2::one(); 6];
        for i in 1..6 {
            g[i] = g[i - 1] * g1;
        }
        g
    })
}

impl Fp12 {
    /// Assemble from coefficients.
    pub fn new(c0: Fp6, c1: Fp6) -> Self {
        Self { c0, c1 }
    }

    /// Build from flat coefficients `Σ aᵢ·wⁱ` (the pre-tower representation).
    /// Even powers land in `c0` (via `v = w²`), odd powers in `c1`.
    pub fn from_coeffs(a: [Fp2; 6]) -> Self {
        Self { c0: Fp6::new(a[0], a[2], a[4]), c1: Fp6::new(a[1], a[3], a[5]) }
    }

    /// The flat coefficients `[a₀, …, a₅]` of `Σ aᵢ·wⁱ`.
    pub fn coeffs(&self) -> [Fp2; 6] {
        [self.c0.c0, self.c1.c0, self.c0.c1, self.c1.c1, self.c0.c2, self.c1.c2]
    }

    /// Embed an `Fp2` element as the constant coefficient.
    pub fn from_fp2(c0: Fp2) -> Self {
        Self { c0: Fp6::from_fp2(c0), c1: Fp6::zero() }
    }

    /// Embed a base-field element.
    pub fn from_fp(v: Fp) -> Self {
        Self::from_fp2(Fp2::from_fp(v))
    }

    /// Build the sparse Miller-loop line element `l0 + l2·w² + l3·w³`.
    pub fn from_line(l0: Fp2, l2: Fp2, l3: Fp2) -> Self {
        Self { c0: Fp6::new(l0, l2, Fp2::zero()), c1: Fp6::new(Fp2::zero(), l3, Fp2::zero()) }
    }

    /// Sparse product with a Miller-loop line `l0 + l2·w² + l3·w³`
    /// (13 unreduced `Fp2` muls, 12 Montgomery reductions; eager: 39).
    pub fn mul_by_line(&self, l0: &Fp2, l2: &Fp2, l3: &Fp2) -> Self {
        use crate::lazy::Fp6Wide;
        // line = L0 + L1·w with L0 = l0 + l2·v, L1 = l3·v  (w³ = v·w).
        let t0 = Fp6Wide::mul_by_01(&self.c0, l0, l2);
        let t1 = Fp6Wide::mul_by_1(&self.c1, l3);
        let c1 =
            Fp6Wide::mul_by_01(&Field::add(&self.c0, &self.c1), l0, &(*l2 + *l3)).sub(&t0).sub(&t1);
        Self { c0: t0.add(&t1.mul_by_v()).reduce(), c1: c1.reduce() }
    }

    /// Eager-reduction reference for [`Fp12::mul_by_line`] (39 reductions
    /// via the `Fp6` eager sparse ops).
    pub fn mul_by_line_eager(&self, l0: &Fp2, l2: &Fp2, l3: &Fp2) -> Self {
        let t0 = self.c0.mul_by_01_eager(l0, l2);
        let t1 = self.c1.mul_by_1_eager(l3);
        let c1 = Field::add(&self.c0, &self.c1).mul_by_01_eager(l0, &(*l2 + *l3)) - t0 - t1;
        Self { c0: t0 + t1.mul_by_v(), c1 }
    }

    /// Eager-reduction reference multiplication (54 reductions via
    /// [`Fp6::mul_eager`]); oracle for the lazy production [`Field::mul`].
    pub fn mul_eager(&self, rhs: &Self) -> Self {
        let aa = self.c0.mul_eager(&rhs.c0);
        let bb = self.c1.mul_eager(&rhs.c1);
        let sum = (self.c0 + self.c1).mul_eager(&(rhs.c0 + rhs.c1));
        Self { c0: aa + bb.mul_by_v(), c1: sum - aa - bb }
    }

    /// Eager-reduction reference squaring (36 reductions); oracle for the
    /// lazy production [`Field::square`].
    pub fn square_eager(&self) -> Self {
        let m = self.c0.mul_eager(&self.c1);
        let t = (self.c0 + self.c1).mul_eager(&(self.c0 + self.c1.mul_by_v()));
        Self { c0: t - m - m.mul_by_v(), c1: m.double() }
    }

    /// The conjugation over `Fp6` (negates the odd flat coefficients). This
    /// equals the `p⁶`-power Frobenius, and for unitary elements (after the
    /// easy part of the final exponentiation) it equals inversion.
    pub fn conjugate(&self) -> Self {
        Self { c0: self.c0, c1: Field::neg(&self.c1) }
    }

    /// The `p`-power Frobenius endomorphism: flat coefficient `aᵢ` maps to
    /// `conj(aᵢ)·γⁱ`.
    pub fn frobenius(&self) -> Self {
        let g = frobenius_gamma();
        let a = self.coeffs();
        Self::from_coeffs(core::array::from_fn(|i| a[i].conjugate() * g[i]))
    }

    /// `p²`-power Frobenius. Computed directly: conjugation applied twice
    /// is the identity, so flat coefficient `aᵢ` maps to `aᵢ·γᵢ·conj(γᵢ)` —
    /// one constant `Fp2` multiplication per coefficient and no
    /// conjugations (the two-`frobenius` composition this replaced paid
    /// both twice).
    pub fn frobenius2(&self) -> Self {
        static GAMMA2: OnceLock<[Fp2; 6]> = OnceLock::new();
        let g2 = GAMMA2.get_or_init(|| {
            let g = frobenius_gamma();
            core::array::from_fn(|i| g[i].conjugate() * g[i])
        });
        let a = self.coeffs();
        Self::from_coeffs(core::array::from_fn(|i| a[i] * g2[i]))
    }

    /// Granger–Scott squaring for elements of the *cyclotomic subgroup*
    /// (`z^{p⁴−p²+1} = 1`, e.g. anything after the easy part of the final
    /// exponentiation). Roughly 3× cheaper than a generic square; the
    /// precondition is NOT checked.
    pub fn cyclotomic_square(&self) -> Self {
        // Decompose over Fp4 = Fp2[s]/(s² − ξ) with s = w³:
        // z = A + B·w + C·w², A = (a0, a3), B = (a1, a4), C = (a2, a5).
        // Each Fp4 squaring closes lazily: 4 reductions (12 total, vs 18
        // for the eager form).
        let a = self.coeffs();
        let sq = crate::lazy::fp4_square;
        let (t00, t01) = sq(&a[0], &a[3]); // A²
        let (t10, t11) = sq(&a[1], &a[4]); // B²
        let (t20, t21) = sq(&a[2], &a[5]); // C²
        let three = |t: &Fp2| t.double() + *t;
        // A' = 3A² − 2Ā ; B' = 3s·C² + 2B̄ ; C' = 3B² − 2C̄
        let out = [
            three(&t00) - a[0].double(),
            three(&t21.mul_by_xi()) + a[1].double(),
            three(&t10) - a[2].double(),
            three(&t01) + a[3].double(),
            three(&t20) - a[4].double(),
            three(&t11) + a[5].double(),
        ];
        Self::from_coeffs(out)
    }

    /// Eager-reduction reference for [`Fp12::cyclotomic_square`] (18
    /// reductions: three eager `Fp4` squarings of 6 each).
    pub fn cyclotomic_square_eager(&self) -> Self {
        let a = self.coeffs();
        let sq = |x: &Fp2, y: &Fp2| -> (Fp2, Fp2) {
            let x2 = x.square_eager();
            let y2 = y.square_eager();
            ((x2 + y2.mul_by_xi()), ((*x + *y).square_eager() - x2 - y2))
        };
        let (t00, t01) = sq(&a[0], &a[3]);
        let (t10, t11) = sq(&a[1], &a[4]);
        let (t20, t21) = sq(&a[2], &a[5]);
        let three = |t: &Fp2| t.double() + *t;
        let out = [
            three(&t00) - a[0].double(),
            three(&t21.mul_by_xi()) + a[1].double(),
            three(&t10) - a[2].double(),
            three(&t01) + a[3].double(),
            three(&t20) - a[4].double(),
            three(&t11) + a[5].double(),
        ];
        Self::from_coeffs(out)
    }

    /// The Karabina compressed form `[B, C]` of a *cyclotomic-subgroup*
    /// element `z = A + B·w + C·w²` over `Fp4` (see [`CompressedCyclo`]).
    /// The precondition is NOT checked.
    pub fn compress_cyclotomic(&self) -> CompressedCyclo {
        let a = self.coeffs();
        CompressedCyclo { a1: a[1], a2: a[2], a4: a[4], a5: a[5] }
    }

    /// `z^x` for the (negative) BLS parameter `x` via Karabina compressed
    /// squarings: all 63 squarings of the chain run on the 4-coefficient
    /// compressed form (6 `Fp2` squarings each instead of Granger–Scott's
    /// 9), the six powers `z^{2^i}` named by the bits of `|x|` are
    /// decompressed together with a *single* shared inversion
    /// ([`CompressedCyclo::batch_decompress`]), and their product is
    /// conjugated for the negative sign. Falls back to the Granger–Scott
    /// reference chain [`Fp12::cyclotomic_pow_x`] on the measure-zero
    /// degenerate inputs whose decompression denominator vanishes (e.g.
    /// `z = 1`). Cyclotomic-subgroup elements only.
    pub fn cyclotomic_pow_x_compressed(&self) -> Self {
        const { assert!(params::BLS_X_IS_NEGATIVE) };
        // |x| = Σ 2^i over these bits (Hamming weight 6), so z^|x| is the
        // product of six snapshots of the compressed squaring chain.
        const X_BITS: [u32; 6] = {
            let x = params::BLS_X;
            assert!(x.count_ones() == 6, "snapshot list assumes weight-6 parameter");
            let mut bits = [0u32; 6];
            let (mut i, mut n) = (0u32, 0usize);
            while i < 64 {
                if (x >> i) & 1 == 1 {
                    bits[n] = i;
                    n += 1;
                }
                i += 1;
            }
            assert!(bits[0] != 0, "bit 0 set would need the uncompressed base");
            bits
        };
        let mut c = self.compress_cyclotomic();
        let mut snaps = [c; 6];
        let mut next = 0usize;
        for i in 1..=X_BITS[5] {
            c = c.square();
            if i == X_BITS[next] {
                snaps[next] = c;
                next += 1;
            }
        }
        let Some(parts) = CompressedCyclo::batch_decompress(&snaps) else {
            return self.cyclotomic_pow_x();
        };
        let mut res = parts[0];
        for p in &parts[1..] {
            res = Field::mul(&res, p);
        }
        res.conjugate()
    }

    /// Eager-reduction twin of [`Fp12::cyclotomic_pow_x_compressed`]: the
    /// same Karabina chain and shared batch decompression, but every
    /// squaring and product runs through the eager-reference tower ops, so
    /// benchmark/differential comparisons isolate exactly the lazy-vs-eager
    /// reduction scheme.
    pub fn cyclotomic_pow_x_compressed_eager(&self) -> Self {
        const { assert!(params::BLS_X_IS_NEGATIVE) };
        let x = params::BLS_X;
        let mut bits = [0u32; 6];
        let mut n = 0usize;
        for i in 0..64 {
            if (x >> i) & 1 == 1 {
                bits[n] = i;
                n += 1;
            }
        }
        debug_assert_eq!(n, 6);
        let mut c = self.compress_cyclotomic();
        let mut snaps = [c; 6];
        let mut next = 0usize;
        for i in 1..=bits[5] {
            c = c.square_eager();
            if i == bits[next] {
                snaps[next] = c;
                next += 1;
            }
        }
        let Some(parts) = CompressedCyclo::batch_decompress(&snaps) else {
            return self.cyclotomic_pow_x();
        };
        let mut res = parts[0];
        for p in &parts[1..] {
            res = res.mul_eager(p);
        }
        res.conjugate()
    }

    /// Exponentiation by a little-endian limb slice using cyclotomic
    /// squarings. Only valid for elements of the cyclotomic subgroup.
    pub fn cyclotomic_pow_limbs(&self, exp: &[u64]) -> Self {
        let mut res = Self::one();
        let mut seen_bit = false;
        for &limb in exp.iter().rev() {
            if !seen_bit && limb == 0 {
                continue;
            }
            for bit in (0..64).rev() {
                if seen_bit {
                    res = res.cyclotomic_square();
                }
                if (limb >> bit) & 1 == 1 {
                    res = Field::mul(&res, self);
                    seen_bit = true;
                }
            }
        }
        res
    }

    /// `z^x` for the (negative) BLS parameter `x`: cyclotomic power by `|x|`
    /// followed by conjugation. Cyclotomic-subgroup elements only.
    pub fn cyclotomic_pow_x(&self) -> Self {
        const { assert!(params::BLS_X_IS_NEGATIVE) };
        self.cyclotomic_pow_limbs(&[params::BLS_X]).conjugate()
    }

    /// Generic exponentiation by a scalar field element. Works for *any*
    /// `Fp12` element; [`crate::Gt`] overrides this with the cyclotomic
    /// fast path, which is only valid inside the cyclotomic subgroup.
    pub fn pow_fr(&self, e: &crate::fp::Fr) -> Self {
        self.pow_limbs(&e.to_uint().0)
    }

    /// A uniformly random element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self { c0: Fp6::random(rng), c1: Fp6::random(rng) }
    }

    /// Canonical little-endian bytes of all 12 `Fp` coefficients, in *flat*
    /// coefficient order (unchanged from the pre-tower representation).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 * Fp::BYTES);
        for ci in &self.coeffs() {
            out.extend_from_slice(&ci.to_bytes());
        }
        out
    }
}

/// Karabina's compressed representation of a cyclotomic-subgroup element.
///
/// Decompose `z = A + B·w + C·w²` over `Fp4 = Fp2[s]/(s² − ξ)` (`s = w³`),
/// i.e. `A = (a0, a3)`, `B = (a1, a4)`, `C = (a2, a5)` in flat `w`-power
/// coefficients. The Granger–Scott squaring formulas update `B` from
/// `{C², B}` and `C` from `{B², C}` alone — `A` feeds only `A'` — so the
/// four coefficients `(a1, a4, a2, a5)` are closed under squaring and a
/// squaring *chain* can drop `A` entirely: 6 `Fp2` squarings per step
/// instead of 9.
///
/// `A` is recovered on demand from the unitarity relations of the
/// cyclotomic subgroup (`z·z̄ = 1`, expanded over `Fp4`):
///
/// ```text
/// w¹:  2·a4·a0 − 2·a1·a3 = ξ·a5² − a2²        (= u1)
/// w²:  2·a2·a0 − 2ξ·a5·a3 = a1² − ξ·a4²       (= u2)
/// ```
///
/// — a 2×2 *linear* system in `(a0, a3)` with determinant
/// `D = 4(a1·a2 − ξ·a4·a5)`, solved by Cramer's rule with one shared
/// batched inversion across a whole chain's snapshots
/// ([`CompressedCyclo::batch_decompress`]). Inputs with `D = 0` (e.g. the
/// identity) cannot be decompressed; callers fall back to the
/// Granger–Scott path, which the property tests pin this representation
/// against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompressedCyclo {
    /// Flat coefficient of `w¹` (real part of `B`).
    a1: Fp2,
    /// Flat coefficient of `w²` (real part of `C`).
    a2: Fp2,
    /// Flat coefficient of `w⁴` (`s`-part of `B`).
    a4: Fp2,
    /// Flat coefficient of `w⁵` (`s`-part of `C`).
    a5: Fp2,
}

impl CompressedCyclo {
    /// Compressed cyclotomic squaring: the `B`/`C` half of the
    /// Granger–Scott formulas, two lazy `Fp4` squarings (8 Montgomery
    /// reductions; eager: 12).
    pub fn square(&self) -> Self {
        let sq = crate::lazy::fp4_square;
        let (t10, t11) = sq(&self.a1, &self.a4); // B²
        let (t20, t21) = sq(&self.a2, &self.a5); // C²
        let three = |t: &Fp2| t.double() + *t;
        // B' = 3s·C² + 2B̄ ; C' = 3B² − 2C̄  (exactly out[1,4,2,5] of the
        // Granger–Scott chain in Fp12::cyclotomic_square)
        Self {
            a1: three(&t21.mul_by_xi()) + self.a1.double(),
            a4: three(&t20) - self.a4.double(),
            a2: three(&t10) - self.a2.double(),
            a5: three(&t11) + self.a5.double(),
        }
    }

    /// Eager-reduction reference for [`CompressedCyclo::square`] (12
    /// reductions via [`Fp2::square_eager`]).
    pub fn square_eager(&self) -> Self {
        let sq = |x: &Fp2, y: &Fp2| -> (Fp2, Fp2) {
            let x2 = x.square_eager();
            let y2 = y.square_eager();
            ((x2 + y2.mul_by_xi()), ((*x + *y).square_eager() - x2 - y2))
        };
        let (t10, t11) = sq(&self.a1, &self.a4);
        let (t20, t21) = sq(&self.a2, &self.a5);
        let three = |t: &Fp2| t.double() + *t;
        Self {
            a1: three(&t21.mul_by_xi()) + self.a1.double(),
            a4: three(&t20) - self.a4.double(),
            a2: three(&t10) - self.a2.double(),
            a5: three(&t11) + self.a5.double(),
        }
    }

    /// Recover the full elements for a batch of compressed values with
    /// *one* shared field inversion (Montgomery's trick over the Cramer
    /// denominators). Returns `None` if any denominator vanishes — the
    /// caller falls back to the uncompressed reference path.
    pub fn batch_decompress(vals: &[CompressedCyclo]) -> Option<Vec<Fp12>> {
        let mut dens: Vec<Fp2> = vals
            .iter()
            .map(|v| {
                (Field::mul(&v.a1, &v.a2) - Field::mul(&v.a4, &v.a5).mul_by_xi()).double().double()
            })
            .collect();
        if dens.iter().any(Fp2::is_zero) {
            return None;
        }
        crate::field::batch_invert(&mut dens);
        Some(
            vals.iter()
                .zip(&dens)
                .map(|(v, dinv)| {
                    let u1 = v.a5.square().mul_by_xi() - v.a2.square();
                    let u2 = v.a1.square() - v.a4.square().mul_by_xi();
                    let a0 = Field::mul(
                        &(Field::mul(&v.a1, &u2) - Field::mul(&v.a5, &u1).mul_by_xi()).double(),
                        dinv,
                    );
                    let a3 = Field::mul(
                        &(Field::mul(&v.a4, &u2) - Field::mul(&v.a2, &u1)).double(),
                        dinv,
                    );
                    Fp12::from_coeffs([a0, v.a1, v.a2, a3, v.a4, v.a5])
                })
                .collect(),
        )
    }

    /// Decompress a single value (its own inversion; prefer the batch form
    /// inside chains).
    pub fn decompress(&self) -> Option<Fp12> {
        Self::batch_decompress(core::slice::from_ref(self)).map(|v| v[0])
    }
}

impl Field for Fp12 {
    fn zero() -> Self {
        Self { c0: Fp6::zero(), c1: Fp6::zero() }
    }

    fn one() -> Self {
        Self { c0: Fp6::one(), c1: Fp6::zero() }
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    #[inline]
    fn add(&self, rhs: &Self) -> Self {
        Self { c0: self.c0 + rhs.c0, c1: self.c1 + rhs.c1 }
    }

    #[inline]
    fn sub(&self, rhs: &Self) -> Self {
        Self { c0: self.c0 - rhs.c0, c1: self.c1 - rhs.c1 }
    }

    #[inline]
    fn neg(&self) -> Self {
        Self { c0: Field::neg(&self.c0), c1: Field::neg(&self.c1) }
    }

    fn mul(&self, rhs: &Self) -> Self {
        // Lazy Karatsuba over Fp6 with w² = v: all cross terms accumulate
        // double-width, one Montgomery reduction per output coefficient —
        // 12 instead of the eager 54.
        use crate::lazy::Fp6Wide;
        let aa = Fp6Wide::mul(&self.c0, &rhs.c0);
        let bb = Fp6Wide::mul(&self.c1, &rhs.c1);
        let sum = Fp6Wide::mul(&(self.c0 + self.c1), &(rhs.c0 + rhs.c1));
        Self { c0: aa.add(&bb.mul_by_v()).reduce(), c1: sum.sub(&aa).sub(&bb).reduce() }
    }

    fn square(&self) -> Self {
        // Lazy complex squaring: (c0 + c1·w)² with w² = v, 2 unreduced Fp6
        // muls, 12 Montgomery reductions (eager: 36).
        use crate::lazy::Fp6Wide;
        let m = Fp6Wide::mul(&self.c0, &self.c1);
        let t = Fp6Wide::mul(&(self.c0 + self.c1), &(self.c0 + self.c1.mul_by_v()));
        Self { c0: t.sub(&m).sub(&m.mul_by_v()).reduce(), c1: m.double().reduce() }
    }

    fn inverse(&self) -> Option<Self> {
        // Norm descent: (c0 + c1·w)⁻¹ = (c0 − c1·w)/(c0² − v·c1²).
        let norm = self.c0.square() - self.c1.square().mul_by_v();
        let t = norm.inverse()?;
        Some(Self { c0: Field::mul(&self.c0, &t), c1: Field::neg(&Field::mul(&self.c1, &t)) })
    }

    fn to_canonical_bytes(&self) -> Vec<u8> {
        self.to_bytes()
    }
}

impl fmt::Debug for Fp12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp12({:?}, …)", self.c0.c0)
    }
}

crate::impl_field_ops!(Fp12);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn w() -> Fp12 {
        let mut c = [Fp2::zero(); 6];
        c[1] = Fp2::one();
        Fp12::from_coeffs(c)
    }

    #[test]
    fn w_sixth_is_xi() {
        let w6 = w().pow_limbs(&[6]);
        assert_eq!(w6, Fp12::from_fp2(Fp2::xi()));
    }

    #[test]
    fn field_axioms() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Fp12::random(&mut r);
            let b = Fp12::random(&mut r);
            let c = Fp12::random(&mut r);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a * Fp12::one(), a);
            assert_eq!(a.square(), a * a);
        }
    }

    #[test]
    fn inverse_round_trip() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Fp12::random(&mut r);
            let inv = a.inverse().unwrap();
            assert_eq!(a * inv, Fp12::one());
        }
        assert!(Fp12::zero().inverse().is_none());
        // sparse elements too
        let line = Fp12::from_line(Fp2::from_u64(3), Fp2::xi(), Fp2::from_u64(9));
        assert_eq!(line * line.inverse().unwrap(), Fp12::one());
    }

    #[test]
    fn coeffs_round_trip() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        assert_eq!(Fp12::from_coeffs(a.coeffs()), a);
    }

    #[test]
    fn mul_by_line_matches_dense() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let (l0, l2, l3) = (Fp2::random(&mut r), Fp2::random(&mut r), Fp2::random(&mut r));
        assert_eq!(a.mul_by_line(&l0, &l2, &l3), Field::mul(&a, &Fp12::from_line(l0, l2, l3)));
    }

    #[test]
    fn frobenius_is_p_power() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let p_limbs = params::fp_params().modulus.0;
        assert_eq!(a.frobenius(), a.pow_limbs(&p_limbs));
    }

    #[test]
    fn frobenius_order_twelve() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let mut b = a;
        for _ in 0..12 {
            b = b.frobenius();
        }
        assert_eq!(a, b);
        // six applications equal conjugation
        let mut c6 = a;
        for _ in 0..6 {
            c6 = c6.frobenius();
        }
        assert_eq!(c6, a.conjugate());
    }

    #[test]
    fn conjugate_fixes_even_subfield() {
        let mut r = rng();
        let mut c = [Fp2::zero(); 6];
        c[0] = Fp2::random(&mut r);
        c[2] = Fp2::random(&mut r);
        c[4] = Fp2::random(&mut r);
        let a = Fp12::from_coeffs(c);
        assert_eq!(a.conjugate(), a);
    }

    /// Project a random element into the cyclotomic subgroup via the easy
    /// part of the final exponentiation.
    fn cyclotomic(r: &mut StdRng) -> Fp12 {
        let f = Fp12::random(r);
        let t = Field::mul(&f.conjugate(), &f.inverse().unwrap());
        Field::mul(&t.frobenius2(), &t)
    }

    #[test]
    fn compressed_square_matches_granger_scott() {
        let mut r = rng();
        for _ in 0..5 {
            let z = cyclotomic(&mut r);
            let mut full = z;
            let mut comp = z.compress_cyclotomic();
            for step in 0..8 {
                full = full.cyclotomic_square();
                comp = comp.square();
                assert_eq!(
                    comp,
                    full.compress_cyclotomic(),
                    "compressed chain diverged at step {step}"
                );
                assert_eq!(comp.decompress().expect("nondegenerate"), full);
            }
        }
    }

    #[test]
    fn compressed_pow_x_matches_reference() {
        let mut r = rng();
        for _ in 0..5 {
            let z = cyclotomic(&mut r);
            assert_eq!(z.cyclotomic_pow_x_compressed(), z.cyclotomic_pow_x());
        }
        // degenerate input: the identity compresses to all zeros and must
        // take the fallback path (1^x = 1)
        assert_eq!(Fp12::one().cyclotomic_pow_x_compressed(), Fp12::one());
    }

    #[test]
    fn batch_decompress_rejects_degenerate_denominators() {
        let mut r = rng();
        let good = cyclotomic(&mut r).compress_cyclotomic();
        let bad = Fp12::one().compress_cyclotomic();
        assert!(CompressedCyclo::batch_decompress(&[good, bad]).is_none());
        assert!(CompressedCyclo::batch_decompress(&[good]).is_some());
    }

    #[test]
    fn frobenius2_matches_double_frobenius() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        assert_eq!(a.frobenius2(), a.frobenius().frobenius());
    }

    #[test]
    fn cyclotomic_square_matches_square_in_subgroup() {
        // Project a random element into the cyclotomic subgroup via the easy
        // part of the final exponentiation: t = f^{(p⁶−1)(p²+1)}.
        let mut r = rng();
        let f = Fp12::random(&mut r);
        let t = Field::mul(&f.conjugate(), &f.inverse().unwrap());
        let t = Field::mul(&t.frobenius2(), &t);
        assert_eq!(t.cyclotomic_square(), t.square());
        assert_eq!(t.cyclotomic_pow_limbs(&[77]), t.pow_limbs(&[77]));
        // x-power: t^x = conj(t^{|x|})
        assert_eq!(t.cyclotomic_pow_x(), t.pow_limbs(&[params::BLS_X]).conjugate());
    }
}
