//! The optimal-ate pairing `e : G1 × G2 → Gt`.
//!
//! The Miller loop keeps `T` in **homogeneous projective coordinates** on
//! the twist and evaluates lines with Costello–Lange–Naehrig-style
//! inversion-free formulas: a doubling step costs 3 `Fp2` multiplications
//! and 6 squarings, an addition step 11 multiplications and 2 squarings,
//! and *no step performs a field inversion* (the per-iteration Montgomery
//! batch inversion of the earlier affine loop is gone — the
//! [`stats::field_inversions`] counter proves the invariant). Lines are
//! sparse values `l0 + l2·w² + l3·w³` folded with [`Fp12::mul_by_line`];
//! projective evaluation scales each line by a factor in `Fp2`, which the
//! final exponentiation annihilates (`c^{(p⁶−1)(p²+1)} = 1` for every
//! `c ∈ Fp2 ∪ Fp4 ∪ Fp6`), so raw loop outputs differ from the affine
//! reference ([`affine`]) only by such factors and the *pairings* agree
//! exactly.
//!
//! [`multi_miller_loop`] runs *one* shared squaring chain for every pair:
//! per loop iteration the accumulator is squared once and each pair
//! contributes only its line values, so `n` pairs cost one loop plus `n`
//! line evaluations — not `n` loops.
//!
//! The final exponentiation computes the easy part `f^{(p⁶−1)(p²+1)}` with
//! conjugation/inversion/Frobenius, and the hard part via the cyclotomic
//! addition chain for
//!
//! ```text
//! (x−1)² · (x+p) · (x² + p² − 1) + 3  =  3·(p⁴ − p² + 1)/r
//! ```
//!
//! (verified against the integer constants at start-up in [`params`]); each
//! `z^x` costs 63 Granger–Scott cyclotomic squarings plus 5 sparse
//! multiplications because `|x|` has Hamming weight 6. The pairing is
//! therefore `e(P,Q) = f^{3(p¹²−1)/r}` — the cube of the textbook reduced
//! pairing, which is an equally valid bilinear non-degenerate pairing
//! (`gcd(3, r) = 1`) and ~40× cheaper than one 1268-bit generic power.

use core::fmt;

use crate::curve::{G1Affine, G2Affine};
use crate::field::Field;
use crate::fp::{Fp, Fr};
use crate::fp12::Fp12;
use crate::fp2::Fp2;
use crate::params;

pub use crate::stats;

/// An element of the pairing target group `Gt ⊂ Fp12*` (order `r`),
/// written multiplicatively.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Gt(pub Fp12);

impl Gt {
    /// The multiplicative identity.
    pub fn one() -> Self {
        Gt(Fp12::one())
    }

    /// Is this the identity element?
    pub fn is_one(&self) -> bool {
        self.0 == Fp12::one()
    }

    /// Group operation.
    pub fn mul(&self, rhs: &Gt) -> Gt {
        Gt(Field::mul(&self.0, &rhs.0))
    }

    /// Group inverse. `Gt` elements are unitary, so inversion is conjugation.
    pub fn invert(&self) -> Gt {
        Gt(self.0.conjugate())
    }

    /// Exponentiation by a scalar (cyclotomic squarings — `Gt` lies in the
    /// cyclotomic subgroup).
    pub fn pow_fr(&self, k: &Fr) -> Gt {
        Gt(self.0.cyclotomic_pow_limbs(&k.to_uint().0))
    }

    /// Exponentiation by a small integer.
    pub fn pow_u64(&self, k: u64) -> Gt {
        Gt(self.0.cyclotomic_pow_limbs(&[k]))
    }
}

impl fmt::Debug for Gt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gt({:?})", self.0)
    }
}

impl core::ops::Mul for Gt {
    type Output = Gt;
    fn mul(self, rhs: Gt) -> Gt {
        Gt::mul(&self, &rhs)
    }
}

/// A sparse line value `l0 + l2·w² + l3·w³`.
type Line = (Fp2, Fp2, Fp2);

/// The twist point `Q` kept in affine form (used by addition steps).
#[derive(Clone, Copy)]
struct TwistAffine {
    x: Fp2,
    y: Fp2,
}

/// The running point `T` in homogeneous projective coordinates on the
/// twist (`x = X/Z`, `y = Y/Z`). No Miller step ever needs `Z = 1`, so no
/// step ever inverts.
#[derive(Clone, Copy)]
struct TwistProjective {
    x: Fp2,
    y: Fp2,
    z: Fp2,
}

/// `12·ξ·c` — multiplying by the twist constant `3b′ = 12(1+u)` costs only
/// additions because ξ-multiplication is `(a−b) + (a+b)u`.
fn mul_by_12_xi(c: &Fp2) -> Fp2 {
    let t = c.mul_by_xi();
    let t4 = t.double().double();
    Field::add(&t4, &t4.double())
}

/// Inversion-free doubling step: tangent line at `T` evaluated at `P`,
/// scaled by `2YZ/Z²` (an `Fp2` factor, killed by the final
/// exponentiation); advances `T ← 2T`. 3 `Fp2` multiplications + 6
/// squarings + 2 `Fp` scalings.
fn projective_double_step(t: &mut TwistProjective, xp: &Fp, yp: &Fp) -> Line {
    // B = Y², C = Z², E = 3b′·C, H = 2YZ (all on the *incoming* T)
    let b = t.y.square();
    let c = t.z.square();
    let e = mul_by_12_xi(&c);
    let h = Field::sub(&Field::sub(&(t.y + t.z).square(), &b), &c);
    let xx3 = t.x.square().triple();

    // line (affine tangent scaled by 2YZ): uses the curve relation
    // X³ = Y²Z − b′Z³ to collapse l0 to B − E.
    let l0 = Field::sub(&b, &e);
    let l2 = Field::neg(&xx3.mul_by_fp(xp));
    let l3 = h.mul_by_fp(yp);

    // point update (CLN doubling, scaled ×4 to avoid halvings):
    // X₃ = 2·XY·(B − F), Y₃ = (B + F)² − 12E², Z₃ = 4·B·H with F = 3E.
    let f = e.triple();
    let xy = Field::mul(&t.x, &t.y);
    let x3 = Field::mul(&xy, &Field::sub(&b, &f)).double();
    let e2 = e.square();
    let e2_12 = Field::add(&e2.double().double(), &e2.double().double().double());
    let y3 = Field::sub(&(b + f).square(), &e2_12);
    let z3 = Field::mul(&b, &h).double().double();
    *t = TwistProjective { x: x3, y: y3, z: z3 };

    (l0, l2, l3)
}

/// Inversion-free mixed addition step: chord line through `T` and the
/// affine `Q`, evaluated at `P`, scaled by `x_Q·Z − X ∈ Fp2`; advances
/// `T ← T + Q`. 11 `Fp2` multiplications + 2 squarings + 2 `Fp` scalings.
fn projective_add_step(t: &mut TwistProjective, q: &TwistAffine, xp: &Fp, yp: &Fp) -> Line {
    // λ = u/v with u = y_Q·Z − Y, v = x_Q·Z − X (both ≠ 0: T ≠ ±Q during a
    // BLS loop over the prime-order subgroup).
    let u = Field::sub(&Field::mul(&q.y, &t.z), &t.y);
    let v = Field::sub(&Field::mul(&q.x, &t.z), &t.x);

    // line (affine chord through Q scaled by v)
    let l0 = Field::sub(&Field::mul(&u, &q.x), &Field::mul(&v, &q.y));
    let l2 = Field::neg(&u.mul_by_fp(xp));
    let l3 = v.mul_by_fp(yp);

    // classical projective mixed addition
    let vv = v.square();
    let vvv = Field::mul(&vv, &v);
    let vv_x = Field::mul(&vv, &t.x);
    let a = Field::sub(&Field::sub(&Field::mul(&u.square(), &t.z), &vvv), &vv_x.double());
    let x3 = Field::mul(&v, &a);
    let y3 = Field::sub(&Field::mul(&u, &Field::sub(&vv_x, &a)), &Field::mul(&vvv, &t.y));
    let z3 = Field::mul(&vvv, &t.z);
    *t = TwistProjective { x: x3, y: y3, z: z3 };

    (l0, l2, l3)
}

/// One pair's running state inside the shared Miller loop.
struct MillerState {
    xp: Fp,
    yp: Fp,
    q0: TwistAffine,
    t: TwistProjective,
}

/// The shared Miller loop `Π f_{|x|,Qᵢ}(Pᵢ)` (up to per-pair `Fp2` line
/// scalings): one squaring chain for any number of pairs, conjugated once
/// for the negative BLS parameter, and **zero field inversions** — every
/// step uses the homogeneous projective formulas. Identity inputs
/// contribute the neutral value 1 (they are skipped).
pub fn multi_miller_loop(pairs: &[(G1Affine, G2Affine)]) -> Fp12 {
    stats::MILLER_LOOPS.with(|c| c.set(c.get() + 1));
    let mut states: Vec<MillerState> = pairs
        .iter()
        .filter(|(p, q)| !p.is_identity() && !q.is_identity())
        .map(|(p, q)| {
            let q0 = TwistAffine { x: q.x, y: q.y };
            MillerState {
                xp: p.x,
                yp: p.y,
                q0,
                t: TwistProjective { x: q.x, y: q.y, z: Fp2::one() },
            }
        })
        .collect();
    if states.is_empty() {
        return Fp12::one();
    }

    let mut f = Fp12::one();
    let x = params::BLS_X;
    let top = 63 - x.leading_zeros();
    for i in (0..top).rev() {
        f = f.square();
        for s in states.iter_mut() {
            let (l0, l2, l3) = projective_double_step(&mut s.t, &s.xp, &s.yp);
            f = f.mul_by_line(&l0, &l2, &l3);
        }
        if (x >> i) & 1 == 1 {
            for s in states.iter_mut() {
                let q0 = s.q0;
                let (l0, l2, l3) = projective_add_step(&mut s.t, &q0, &s.xp, &s.yp);
                f = f.mul_by_line(&l0, &l2, &l3);
            }
        }
    }
    const { assert!(params::BLS_X_IS_NEGATIVE) };
    f.conjugate()
}

/// The Miller loop for one pair (the shared loop with a single state).
pub fn miller_loop(p: &G1Affine, q: &G2Affine) -> Fp12 {
    let pair = (*p, *q);
    multi_miller_loop(core::slice::from_ref(&pair))
}

/// Eager-reduction twin of [`multi_miller_loop`]: identical projective
/// line steps, but the accumulator runs on the eager-reference `Fp12`
/// ops ([`Fp12::square_eager`], [`Fp12::mul_by_line_eager`]) — one
/// Montgomery reduction per base-field multiplication instead of one per
/// tower output coefficient. Kept for the perf ledger's same-run twin
/// entries and the differential reduction-count tests; not counted in
/// [`stats::miller_loops`].
pub fn multi_miller_loop_eager(pairs: &[(G1Affine, G2Affine)]) -> Fp12 {
    let mut states: Vec<MillerState> = pairs
        .iter()
        .filter(|(p, q)| !p.is_identity() && !q.is_identity())
        .map(|(p, q)| {
            let q0 = TwistAffine { x: q.x, y: q.y };
            MillerState {
                xp: p.x,
                yp: p.y,
                q0,
                t: TwistProjective { x: q.x, y: q.y, z: Fp2::one() },
            }
        })
        .collect();
    if states.is_empty() {
        return Fp12::one();
    }

    let mut f = Fp12::one();
    let x = params::BLS_X;
    let top = 63 - x.leading_zeros();
    for i in (0..top).rev() {
        f = f.square_eager();
        for s in states.iter_mut() {
            let (l0, l2, l3) = projective_double_step(&mut s.t, &s.xp, &s.yp);
            f = f.mul_by_line_eager(&l0, &l2, &l3);
        }
        if (x >> i) & 1 == 1 {
            for s in states.iter_mut() {
                let q0 = s.q0;
                let (l0, l2, l3) = projective_add_step(&mut s.t, &q0, &s.xp, &s.yp);
                f = f.mul_by_line_eager(&l0, &l2, &l3);
            }
        }
    }
    const { assert!(params::BLS_X_IS_NEGATIVE) };
    f.conjugate()
}

/// The retired affine Miller loop, kept as an independently-derived
/// reference implementation: property tests assert that the projective
/// loop above agrees with it on random inputs (after final exponentiation
/// — the raw loop values differ by subfield line scalings). Production
/// code must not call it: every iteration pays a Montgomery batch
/// inversion that the projective formulas avoid entirely.
pub mod affine {
    use super::{Line, TwistAffine};
    use crate::curve::{G1Affine, G2Affine};
    use crate::field::Field;
    use crate::fp::Fp;
    use crate::fp12::Fp12;
    use crate::fp2::Fp2;
    use crate::params;

    /// Tangent line at `t`, evaluated at `p`, given `(2·t.y)⁻¹`; advances
    /// `t ← 2t`.
    fn double_step(t: &mut TwistAffine, xp: &Fp, yp: &Fp, denom_inv: &Fp2) -> Line {
        // λ = 3x² / 2y on the twist
        let lambda = Field::mul(&t.x.square().triple(), denom_inv);
        let l0 = Field::sub(&Field::mul(&lambda, &t.x), &t.y);
        let l2 = Field::neg(&lambda.mul_by_fp(xp));
        let l3 = Fp2::from_fp(*yp);

        let x3 = Field::sub(&lambda.square(), &t.x.double());
        let y3 = Field::sub(&Field::mul(&lambda, &Field::sub(&t.x, &x3)), &t.y);
        *t = TwistAffine { x: x3, y: y3 };

        (l0, l2, l3)
    }

    /// Chord line through `t` and `q`, evaluated at `p`, given
    /// `(t.x − q.x)⁻¹`; advances `t ← t + q`.
    fn add_step(t: &mut TwistAffine, q: &TwistAffine, xp: &Fp, yp: &Fp, denom_inv: &Fp2) -> Line {
        let lambda = Field::mul(&Field::sub(&t.y, &q.y), denom_inv);
        let l0 = Field::sub(&Field::mul(&lambda, &t.x), &t.y);
        let l2 = Field::neg(&lambda.mul_by_fp(xp));
        let l3 = Fp2::from_fp(*yp);

        let x3 = Field::sub(&Field::sub(&lambda.square(), &t.x), &q.x);
        let y3 = Field::sub(&Field::mul(&lambda, &Field::sub(&t.x, &x3)), &t.y);
        *t = TwistAffine { x: x3, y: y3 };

        (l0, l2, l3)
    }

    struct State {
        xp: Fp,
        yp: Fp,
        q0: TwistAffine,
        t: TwistAffine,
    }

    /// The affine shared Miller loop (reference only — see module docs).
    pub fn multi_miller_loop(pairs: &[(G1Affine, G2Affine)]) -> Fp12 {
        let mut states: Vec<State> = pairs
            .iter()
            .filter(|(p, q)| !p.is_identity() && !q.is_identity())
            .map(|(p, q)| {
                let q0 = TwistAffine { x: q.x, y: q.y };
                State { xp: p.x, yp: p.y, q0, t: q0 }
            })
            .collect();
        if states.is_empty() {
            return Fp12::one();
        }

        let mut f = Fp12::one();
        let mut denoms = vec![Fp2::zero(); states.len()];
        let x = params::BLS_X;
        let top = 63 - x.leading_zeros();
        for i in (0..top).rev() {
            f = f.square();
            for (d, s) in denoms.iter_mut().zip(&states) {
                *d = s.t.y.double(); // 2y ≠ 0 in the prime-order subgroup
            }
            crate::field::batch_invert(&mut denoms);
            for (s, inv) in states.iter_mut().zip(&denoms) {
                let (l0, l2, l3) = double_step(&mut s.t, &s.xp, &s.yp, inv);
                f = f.mul_by_line(&l0, &l2, &l3);
            }
            if (x >> i) & 1 == 1 {
                for (d, s) in denoms.iter_mut().zip(&states) {
                    *d = Field::sub(&s.t.x, &s.q0.x); // T ≠ ±Q during a BLS loop
                }
                crate::field::batch_invert(&mut denoms);
                for (s, inv) in states.iter_mut().zip(&denoms) {
                    let q0 = s.q0;
                    let (l0, l2, l3) = add_step(&mut s.t, &q0, &s.xp, &s.yp, inv);
                    f = f.mul_by_line(&l0, &l2, &l3);
                }
            }
        }
        const { assert!(params::BLS_X_IS_NEGATIVE) };
        f.conjugate()
    }

    /// Reference pairing: affine Miller loop + the shared final
    /// exponentiation.
    pub fn pairing(p: &G1Affine, q: &G2Affine) -> super::Gt {
        super::final_exponentiation(&multi_miller_loop(core::slice::from_ref(&(*p, *q))))
    }
}

/// `f^{3(p¹²−1)/r}`: easy part by Frobenius/conjugation/inversion, hard part
/// by the cyclotomic addition chain for `(x−1)²(x+p)(x²+p²−1) + 3`.
pub fn final_exponentiation(f: &Fp12) -> Gt {
    assert!(!f.is_zero(), "final exponentiation of zero");
    stats::FINAL_EXPS.with(|c| c.set(c.get() + 1));
    // easy part: m = f^{(p⁶−1)(p²+1)} — lands in the cyclotomic subgroup,
    // where inversion = conjugation and the cyclotomic squarings apply.
    let t = Field::mul(&f.conjugate(), &f.inverse().expect("nonzero"));
    let m = Field::mul(&t.frobenius2(), &t);
    // hard part: m^{(x−1)²·(x+p)·(x²+p²−1) + 3}; every z^x runs the
    // Karabina compressed chain (Granger–Scott is its internal fallback
    // and the property-tested reference).
    // t0 = m^{x−1}
    let t0 = Field::mul(&m.cyclotomic_pow_x_compressed(), &m.conjugate());
    // t1 = m^{(x−1)²}
    let t1 = Field::mul(&t0.cyclotomic_pow_x_compressed(), &t0.conjugate());
    // t2 = t1^{x+p}
    let t2 = Field::mul(&t1.cyclotomic_pow_x_compressed(), &t1.frobenius());
    // t3 = t2^{x²+p²−1}
    let t3 = Field::mul(
        &Field::mul(
            &t2.cyclotomic_pow_x_compressed().cyclotomic_pow_x_compressed(),
            &t2.frobenius2(),
        ),
        &t2.conjugate(),
    );
    // result = t3 · m³
    Gt(Field::mul(&t3, &Field::mul(&m.cyclotomic_square(), &m)))
}

/// [`final_exponentiation`] with every `z^x` on the Granger–Scott
/// reference chain — the pre-Karabina path, retained for the perf ledger's
/// same-run twin entry and for differential tests. Not counted in
/// [`stats::final_exps`].
pub fn final_exponentiation_gs(f: &Fp12) -> Gt {
    assert!(!f.is_zero(), "final exponentiation of zero");
    let t = Field::mul(&f.conjugate(), &f.inverse().expect("nonzero"));
    let m = Field::mul(&t.frobenius2(), &t);
    let t0 = Field::mul(&m.cyclotomic_pow_x(), &m.conjugate());
    let t1 = Field::mul(&t0.cyclotomic_pow_x(), &t0.conjugate());
    let t2 = Field::mul(&t1.cyclotomic_pow_x(), &t1.frobenius());
    let t3 = Field::mul(
        &Field::mul(&t2.cyclotomic_pow_x().cyclotomic_pow_x(), &t2.frobenius2()),
        &t2.conjugate(),
    );
    Gt(Field::mul(&t3, &Field::mul(&m.cyclotomic_square(), &m)))
}

/// Eager-reduction twin of [`final_exponentiation`]: the same Karabina
/// addition chain (including the shared batched decompression), but every
/// multiplication and squaring runs on the eager-reference tower ops.
/// Perf-ledger twin and differential-test oracle; not counted in
/// [`stats::final_exps`].
pub fn final_exponentiation_eager(f: &Fp12) -> Gt {
    assert!(!f.is_zero(), "final exponentiation of zero");
    let t = f.conjugate().mul_eager(&f.inverse().expect("nonzero"));
    let m = t.frobenius2().mul_eager(&t);
    let t0 = m.cyclotomic_pow_x_compressed_eager().mul_eager(&m.conjugate());
    let t1 = t0.cyclotomic_pow_x_compressed_eager().mul_eager(&t0.conjugate());
    let t2 = t1.cyclotomic_pow_x_compressed_eager().mul_eager(&t1.frobenius());
    let t3 = t2
        .cyclotomic_pow_x_compressed_eager()
        .cyclotomic_pow_x_compressed_eager()
        .mul_eager(&t2.frobenius2())
        .mul_eager(&t2.conjugate());
    Gt(t3.mul_eager(&m.cyclotomic_square_eager().mul_eager(&m)))
}

/// The bilinear pairing `e(P, Q)`.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Gt {
    final_exponentiation(&miller_loop(p, q))
}

/// Eager-reduction twin of [`pairing`]: eager Miller loop + eager final
/// exponentiation. Must return bit-identical `Gt` values to [`pairing`]
/// (the property tests pin this); exists so the perf ledger can carry a
/// same-run eager baseline next to the lazy production numbers.
pub fn pairing_eager(p: &G1Affine, q: &G2Affine) -> Gt {
    let pair = (*p, *q);
    final_exponentiation_eager(&multi_miller_loop_eager(core::slice::from_ref(&pair)))
}

/// `Π e(Pᵢ, Qᵢ)` with one shared Miller loop and one final exponentiation.
pub fn multi_pairing(pairs: &[(G1Affine, G2Affine)]) -> Gt {
    final_exponentiation(&multi_miller_loop(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{G1Projective, G2Projective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gens() -> (G1Affine, G2Affine) {
        (G1Projective::generator().to_affine(), G2Projective::generator().to_affine())
    }

    #[test]
    fn non_degenerate() {
        let (g1, g2) = gens();
        let e = pairing(&g1, &g2);
        assert!(!e.is_one(), "pairing of generators must not be 1");
        // and it must have order r: e^r = 1
        let r = crate::params::fr_params().modulus;
        assert_eq!(e.0.pow_limbs(&r.0), Fp12::one(), "Gt element must have order dividing r");
    }

    #[test]
    fn final_exp_matches_integer_exponent() {
        // The cyclotomic chain must equal one generic power by the derived
        // integer 3·(p⁴−p²+1)/r on the easy-part output.
        let mut r = StdRng::seed_from_u64(5);
        let f = Fp12::random(&mut r);
        let t = Field::mul(&f.conjugate(), &f.inverse().unwrap());
        let m = Field::mul(&t.frobenius2(), &t);
        let expect = m.pow_limbs(&params::derived().final_exp_hard_x3);
        assert_eq!(final_exponentiation(&f).0, expect);
    }

    #[test]
    fn karabina_and_gs_final_exponentiation_agree() {
        let mut r = StdRng::seed_from_u64(31);
        for _ in 0..3 {
            let f = Fp12::random(&mut r);
            assert_eq!(final_exponentiation(&f), final_exponentiation_gs(&f));
        }
    }

    #[test]
    fn eager_twins_agree_with_production() {
        let mut r = StdRng::seed_from_u64(32);
        let p = G1Projective::generator().mul_fr(&Fr::random(&mut r)).to_affine();
        let q = G2Projective::generator().mul_fr(&Fr::random(&mut r)).to_affine();
        let pairs = [(p, q)];
        assert_eq!(multi_miller_loop_eager(&pairs), multi_miller_loop(&pairs));
        let f = Fp12::random(&mut r);
        assert_eq!(final_exponentiation_eager(&f), final_exponentiation(&f));
        assert_eq!(pairing_eager(&p, &q), pairing(&p, &q));
    }

    /// The differential reduction-count assertion the split stats counters
    /// exist for: over the same pairing computation, the lazy production
    /// path must close strictly fewer Montgomery reductions than the eager
    /// reference issues base-field multiplications.
    #[test]
    fn lazy_path_performs_strictly_fewer_reductions() {
        let (g1, g2) = gens();
        let pairs = [(g1, g2)];

        // Lazy production pairing: delta of the lazy counter.
        let lazy_before = stats::montgomery_reductions();
        let lhs = multi_pairing(&pairs);
        let lazy = stats::montgomery_reductions() - lazy_before;

        // Eager twin of the same computation: delta of the eager counter.
        let eager_before = stats::montgomery_reductions_eager();
        let rhs = final_exponentiation_eager(&multi_miller_loop_eager(&pairs));
        let eager = stats::montgomery_reductions_eager() - eager_before;

        assert_eq!(lhs, rhs, "twin paths must agree before counts mean anything");
        assert!(lazy > 0, "the lazy counter must actually be wired up");
        assert!(eager > 0, "the eager counter must actually be wired up");
        assert!(
            lazy < eager,
            "lazy path must reduce strictly less often: lazy={lazy} eager={eager}"
        );

        // Per-op sanity at the bottom of the tower: an Fp12 mul closes 12
        // accumulators lazily but pays 54 reductions eagerly.
        let mut r = StdRng::seed_from_u64(33);
        let a = Fp12::random(&mut r);
        let b = Fp12::random(&mut r);
        let l0 = stats::montgomery_reductions();
        let x = Field::mul(&a, &b);
        let dl = stats::montgomery_reductions() - l0;
        let e0 = stats::montgomery_reductions_eager();
        let y = a.mul_eager(&b);
        let de = stats::montgomery_reductions_eager() - e0;
        assert_eq!(x, y);
        assert_eq!(dl, 12, "lazy Fp12 mul closes one reduction per coefficient");
        assert_eq!(de, 54, "eager Fp12 mul pays one reduction per Fp mul");
    }

    #[test]
    fn multi_miller_matches_product_of_single_loops() {
        let (g1, g2) = gens();
        let p2 = G1Projective::generator().mul_u64(5).to_affine();
        let q2 = G2Projective::generator().mul_u64(8).to_affine();
        let shared = multi_miller_loop(&[(g1, g2), (p2, q2)]);
        let product = Field::mul(&miller_loop(&g1, &g2), &miller_loop(&p2, &q2));
        // The shared squaring chain distributes over the per-pair product:
        // (Πfᵢ)²·Πlᵢ per iteration — so the raw Fp12 values are identical,
        // not merely equal after final exponentiation.
        assert_eq!(shared, product);
        assert_eq!(final_exponentiation(&shared), final_exponentiation(&product));
    }

    #[test]
    fn projective_loop_matches_affine_reference() {
        let mut r = StdRng::seed_from_u64(77);
        for _ in 0..3 {
            let p = G1Projective::generator().mul_fr(&Fr::random(&mut r)).to_affine();
            let q = G2Projective::generator().mul_fr(&Fr::random(&mut r)).to_affine();
            // Raw loop outputs differ by Fp2 line scalings; the pairings
            // (post final exponentiation) must agree exactly.
            assert_eq!(pairing(&p, &q), affine::pairing(&p, &q));
        }
    }

    #[test]
    fn miller_loop_is_inversion_free() {
        let (g1, _g2) = gens();
        let pairs: Vec<_> =
            (1..=4u64).map(|i| (g1, G2Projective::generator().mul_u64(i).to_affine())).collect();
        let before = stats::field_inversions();
        let _ = multi_miller_loop(&pairs);
        assert_eq!(
            stats::field_inversions(),
            before,
            "the projective Miller loop must not invert any field element"
        );
        // sanity: the counter is actually wired up
        let _ = Fp::from_u64(7).inverse();
        assert_eq!(stats::field_inversions(), before + 1);
    }

    #[test]
    fn multi_pairing_is_one_loop_one_final_exp() {
        let (g1, g2) = gens();
        let pairs: Vec<_> = (1..=5u64)
            .map(|i| {
                (
                    G1Projective::generator().mul_u64(i).to_affine(),
                    G2Projective::generator().mul_u64(i + 1).to_affine(),
                )
            })
            .collect();
        let (l0, e0) = (stats::miller_loops(), stats::final_exps());
        let _ = multi_pairing(&pairs);
        assert_eq!(stats::miller_loops() - l0, 1, "n pairs must share one Miller loop");
        assert_eq!(stats::final_exps() - e0, 1, "n pairs must share one final exponentiation");
        // sanity: it still equals the product of individual pairings
        let prod = pairs.iter().fold(Gt::one(), |acc, (p, q)| acc.mul(&pairing(p, q)));
        assert_eq!(multi_pairing(&pairs), prod);
        let _ = (g1, g2);
    }

    #[test]
    fn bilinear_small_scalars() {
        let (g1, g2) = gens();
        let p6 = G1Projective::generator().mul_u64(6).to_affine();
        let q7 = G2Projective::generator().mul_u64(7).to_affine();
        let lhs = pairing(&p6, &q7);
        let rhs = pairing(&g1, &g2).pow_u64(42);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinear_random_scalars() {
        let mut r = StdRng::seed_from_u64(1);
        let (g1, g2) = gens();
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        let lhs = pairing(
            &G1Projective::generator().mul_fr(&a).to_affine(),
            &G2Projective::generator().mul_fr(&b).to_affine(),
        );
        let rhs = pairing(&g1, &g2).pow_fr(&(a * b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn linear_in_first_argument() {
        let (g1, g2) = gens();
        let h1 = G1Projective::generator().mul_u64(11);
        let sum = G1Projective::generator().add(&h1).to_affine();
        let lhs = pairing(&sum, &g2);
        let rhs = pairing(&g1, &g2).mul(&pairing(&h1.to_affine(), &g2));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn multi_pairing_cancellation() {
        let (g1, g2) = gens();
        let neg = G1Projective::generator().neg().to_affine();
        let prod = multi_pairing(&[(g1, g2), (neg, g2)]);
        assert!(prod.is_one());
    }

    #[test]
    fn identity_inputs() {
        let (g1, g2) = gens();
        assert!(pairing(&G1Affine::identity(), &g2).is_one());
        assert!(pairing(&g1, &G2Affine::identity()).is_one());
        assert!(multi_pairing(&[]).is_one());
    }

    #[test]
    fn gt_group_ops() {
        let (g1, g2) = gens();
        let e = pairing(&g1, &g2);
        assert!(e.mul(&e.invert()).is_one());
        assert_eq!(e.pow_u64(3), e.mul(&e).mul(&e));
    }
}
