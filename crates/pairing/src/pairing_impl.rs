//! The optimal-ate pairing `e : G1 × G2 → Gt`.
//!
//! The Miller loop keeps `T` in affine coordinates *on the twist* and emits
//! sparse line values `c0 + c2·w² + c3·w³` (the `w³` clearing factor lies in
//! `F_{p⁴}` and vertical lines lie in `F_{p⁶}`; both subgroups are
//! annihilated by the final exponentiation, so dropping them is sound).
//! The final exponentiation computes the easy part with
//! conjugation/inversion/Frobenius and the hard part as a single power by
//! the derived exponent `(p⁴ − p² + 1)/r`.

use core::fmt;

use crate::curve::{G1Affine, G2Affine};
use crate::field::Field;
use crate::fp::{Fp, Fr};
use crate::fp12::Fp12;
use crate::fp2::Fp2;
use crate::params;

/// An element of the pairing target group `Gt ⊂ Fp12*` (order `r`),
/// written multiplicatively.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Gt(pub Fp12);

impl Gt {
    /// The multiplicative identity.
    pub fn one() -> Self {
        Gt(Fp12::one())
    }

    pub fn is_one(&self) -> bool {
        self.0 == Fp12::one()
    }

    /// Group operation.
    pub fn mul(&self, rhs: &Gt) -> Gt {
        Gt(Field::mul(&self.0, &rhs.0))
    }

    /// Group inverse. `Gt` elements are unitary, so inversion is conjugation.
    pub fn invert(&self) -> Gt {
        Gt(self.0.conjugate())
    }

    /// Exponentiation by a scalar.
    pub fn pow_fr(&self, k: &Fr) -> Gt {
        Gt(self.0.pow_fr(k))
    }

    pub fn pow_u64(&self, k: u64) -> Gt {
        Gt(self.0.pow_limbs(&[k]))
    }
}

impl fmt::Debug for Gt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gt({:?})", self.0)
    }
}

impl core::ops::Mul for Gt {
    type Output = Gt;
    fn mul(self, rhs: Gt) -> Gt {
        Gt::mul(&self, &rhs)
    }
}

/// Affine point on the twist during the Miller loop.
#[derive(Clone, Copy)]
struct TwistPoint {
    x: Fp2,
    y: Fp2,
}

/// Tangent line at `t`, evaluated at `p`; advances `t ← 2t`.
fn double_step(t: &mut TwistPoint, xp: &Fp, yp: &Fp) -> Fp12 {
    // λ' = 3x² / 2y on the twist
    let lambda = Field::mul(
        &t.x.square().triple(),
        &t.y.double().inverse().expect("2y ≠ 0 in prime-order subgroup"),
    );
    let c0 = Field::sub(&Field::mul(&lambda, &t.x), &t.y);
    let c2 = Field::neg(&lambda.mul_by_fp(xp));
    let c3 = Fp2::from_fp(*yp);

    let x3 = Field::sub(&lambda.square(), &t.x.double());
    let y3 = Field::sub(&Field::mul(&lambda, &Field::sub(&t.x, &x3)), &t.y);
    *t = TwistPoint { x: x3, y: y3 };

    Fp12::from_line(c0, c2, c3)
}

/// Chord line through `t` and `q`, evaluated at `p`; advances `t ← t + q`.
fn add_step(t: &mut TwistPoint, q: &TwistPoint, xp: &Fp, yp: &Fp) -> Fp12 {
    let lambda = Field::mul(
        &Field::sub(&t.y, &q.y),
        &Field::sub(&t.x, &q.x).inverse().expect("T ≠ ±Q during a BLS Miller loop"),
    );
    let c0 = Field::sub(&Field::mul(&lambda, &t.x), &t.y);
    let c2 = Field::neg(&lambda.mul_by_fp(xp));
    let c3 = Fp2::from_fp(*yp);

    let x3 = Field::sub(&Field::sub(&lambda.square(), &t.x), &q.x);
    let y3 = Field::sub(&Field::mul(&lambda, &Field::sub(&t.x, &x3)), &t.y);
    *t = TwistPoint { x: x3, y: y3 };

    Fp12::from_line(c0, c2, c3)
}

/// The Miller loop `f_{|x|,Q}(P)` for one pair, conjugated for the negative
/// BLS parameter. Identity inputs contribute the neutral value 1.
pub fn miller_loop(p: &G1Affine, q: &G2Affine) -> Fp12 {
    if p.is_identity() || q.is_identity() {
        return Fp12::one();
    }
    let xp = p.x;
    let yp = p.y;
    let q0 = TwistPoint { x: q.x, y: q.y };
    let mut t = q0;
    let mut f = Fp12::one();

    let x = params::BLS_X;
    let top = 63 - x.leading_zeros();
    for i in (0..top).rev() {
        f = Field::mul(&f.square(), &double_step(&mut t, &xp, &yp));
        if (x >> i) & 1 == 1 {
            f = Field::mul(&f, &add_step(&mut t, &q0, &xp, &yp));
        }
    }
    const { assert!(params::BLS_X_IS_NEGATIVE) };
    f.conjugate()
}

/// Product of Miller loops over several pairs — share one final
/// exponentiation via [`final_exponentiation`].
pub fn multi_miller_loop(pairs: &[(G1Affine, G2Affine)]) -> Fp12 {
    pairs.iter().fold(Fp12::one(), |acc, (p, q)| Field::mul(&acc, &miller_loop(p, q)))
}

/// `f^{(p¹²−1)/r}`: easy part by Frobenius/conjugation, hard part by a single
/// big power.
pub fn final_exponentiation(f: &Fp12) -> Gt {
    assert!(!f.is_zero(), "final exponentiation of zero");
    // easy part: f^{(p^6-1)(p^2+1)}
    let t = Field::mul(&f.conjugate(), &f.inverse().expect("nonzero"));
    let t = Field::mul(&t.frobenius().frobenius(), &t);
    // hard part
    Gt(t.pow_limbs(&params::derived().final_exp_hard))
}

/// The bilinear pairing `e(P, Q)`.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Gt {
    final_exponentiation(&miller_loop(p, q))
}

/// `Π e(Pᵢ, Qᵢ)` with a single shared final exponentiation.
pub fn multi_pairing(pairs: &[(G1Affine, G2Affine)]) -> Gt {
    final_exponentiation(&multi_miller_loop(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{G1Projective, G2Projective};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gens() -> (G1Affine, G2Affine) {
        (G1Projective::generator().to_affine(), G2Projective::generator().to_affine())
    }

    #[test]
    fn non_degenerate() {
        let (g1, g2) = gens();
        let e = pairing(&g1, &g2);
        assert!(!e.is_one(), "pairing of generators must not be 1");
        // and it must have order r: e^r = 1
        let r = crate::params::fr_params().modulus;
        assert_eq!(e.0.pow_limbs(&r.0), Fp12::one(), "Gt element must have order dividing r");
    }

    #[test]
    fn bilinear_small_scalars() {
        let (g1, g2) = gens();
        let p6 = G1Projective::generator().mul_u64(6).to_affine();
        let q7 = G2Projective::generator().mul_u64(7).to_affine();
        let lhs = pairing(&p6, &q7);
        let rhs = pairing(&g1, &g2).pow_u64(42);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinear_random_scalars() {
        let mut r = StdRng::seed_from_u64(1);
        let (g1, g2) = gens();
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        let lhs = pairing(
            &G1Projective::generator().mul_fr(&a).to_affine(),
            &G2Projective::generator().mul_fr(&b).to_affine(),
        );
        let rhs = pairing(&g1, &g2).pow_fr(&(a * b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn linear_in_first_argument() {
        let (g1, g2) = gens();
        let h1 = G1Projective::generator().mul_u64(11);
        let sum = G1Projective::generator().add(&h1).to_affine();
        let lhs = pairing(&sum, &g2);
        let rhs = pairing(&g1, &g2).mul(&pairing(&h1.to_affine(), &g2));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn multi_pairing_cancellation() {
        let (g1, g2) = gens();
        let neg = G1Projective::generator().neg().to_affine();
        let prod = multi_pairing(&[(g1, g2), (neg, g2)]);
        assert!(prod.is_one());
    }

    #[test]
    fn identity_inputs() {
        let (g1, g2) = gens();
        assert!(pairing(&G1Affine::identity(), &g2).is_one());
        assert!(pairing(&g1, &G2Affine::identity()).is_one());
    }

    #[test]
    fn gt_group_ops() {
        let (g1, g2) = gens();
        let e = pairing(&g1, &g2);
        assert!(e.mul(&e.invert()).is_one());
        assert_eq!(e.pow_u64(3), e.mul(&e).mul(&e));
    }
}
