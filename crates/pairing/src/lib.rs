//! BLS12-381 bilinear pairing, implemented from scratch.
//!
//! This crate is the cryptographic substrate of the vChain reproduction
//! (the paper used the MCL C++ library; see DESIGN.md §2 for the
//! substitution rationale). It provides:
//!
//! * the base field [`Fp`] (381 bits) and scalar field [`Fr`] (255 bits) in
//!   Montgomery form,
//! * the extensions [`Fp2`] and [`Fp12`] (the latter as a *direct* sextic
//!   extension `Fp2[w]/(w⁶ − ξ)`, ξ = 1 + u),
//! * the groups [`G1Projective`] / [`G2Projective`] with complete projective
//!   formulas, scalar multiplication and Pippenger multi-exponentiation,
//! * the optimal-ate [`pairing`] `e : G1 × G2 → Gt` with a multi-pairing
//!   fast path.
//!
//! All derived constants (Montgomery parameters, Frobenius coefficients,
//! final-exponentiation exponent) are computed at start-up from the BLS
//! parameter `x = -0xd201_0000_0001_0000` and cross-checked against the
//! hard-coded modulus; see [`params`].
//!
//! ```
//! use vchain_pairing::{pairing, Fr, G1Projective, G2Projective};
//!
//! let (g1, g2) = (G1Projective::generator(), G2Projective::generator());
//! let (a, b) = (Fr::from_u64(6), Fr::from_u64(7));
//! let lhs = pairing(&g1.mul_fr(&a).to_affine(), &g2.mul_fr(&b).to_affine());
//! let rhs = pairing(&g1.to_affine(), &g2.to_affine()).pow_fr(&(a * b));
//! assert_eq!(lhs, rhs);
//! ```

#![warn(missing_docs)]

pub mod comb;
pub mod curve;
pub mod decode;
pub mod field;
pub mod fp;
pub mod fp12;
pub mod fp2;
pub mod fp6;
pub mod lazy;
pub mod pairing_impl;
pub mod params;
pub mod stats;

pub use comb::{comb_multiexp, generator_powers, FixedBaseComb, PowersCombCache};
pub use curve::{
    batch_to_affine, g2_endo, multiexp, sum_affine, sum_affine_groups, Affine, CurveSpec, G1Affine,
    G1Projective, G1Spec, G2Affine, G2Endo, G2Projective, G2Spec, Projective,
};
pub use decode::{g1_subgroup_check, g2_subgroup_check, PointDecodeError, WireField};
pub use field::{batch_invert, Field};
pub use fp::{Fp, Fr};
pub use fp12::{CompressedCyclo, Fp12};
pub use fp2::Fp2;
pub use fp6::Fp6;
pub use pairing_impl::{
    final_exponentiation, final_exponentiation_eager, final_exponentiation_gs, multi_miller_loop,
    multi_miller_loop_eager, multi_pairing, pairing, pairing_eager, Gt,
};
