//! Short-Weierstrass groups `G1` (over `Fp`) and `G2` (over `Fp2`, the
//! sextic twist), with complete projective formulas, scalar multiplication
//! and Pippenger multi-exponentiation.
//!
//! The addition/doubling formulas are the complete formulas for `a = 0`
//! curves of Renes–Costello–Batina (EUROCRYPT'16, Algorithms 7 & 9): no
//! special cases for the identity or for doubling, which removes a whole
//! class of edge-case bugs (and is validated by the group-law property
//! tests at the bottom of this file).

use core::fmt;
use std::sync::OnceLock;

use vchain_bigint::{U256, U384};

use crate::field::Field;
use crate::fp::{Fp, Fr};
use crate::fp2::Fp2;
use crate::params;

/// Static description of one of the two source groups.
pub trait CurveSpec: Copy + Clone + Send + Sync + 'static {
    /// The coordinate field. The [`WireField`](crate::decode::WireField)
    /// bound supplies canonical decoding and square roots, so the untrusted
    /// decompressing deserializer ([`Affine::try_from_bytes`]) works
    /// generically over both groups.
    type F: crate::decode::WireField;
    /// The curve constant `b` in `y² = x³ + b`.
    fn b() -> Self::F;
    /// `3·b`, used by the complete formulas.
    fn b3() -> Self::F;
    /// The (checked) published generator.
    fn generator() -> Affine<Self>;
    /// Cached fixed-base window table for the generator (lazily built).
    fn generator_table() -> &'static FixedBaseTable<Self>;
    /// The cheap endomorphism `φ = [|x|]` (scalar multiplication by the
    /// absolute BLS parameter) on an affine point, when this group has
    /// one. `G2` returns the negated twist/GLS endomorphism `φ = −ψ` (see
    /// [`g2_endo`]); `G1` returns `None` and takes the generic ladders.
    fn endo_phi_affine(p: &Affine<Self>) -> Option<Affine<Self>> {
        let _ = p;
        None
    }
    /// [`CurveSpec::endo_phi_affine`] on projective coordinates (no
    /// normalization needed: the endomorphism acts coordinate-wise).
    fn endo_phi_proj(p: &Projective<Self>) -> Option<Projective<Self>> {
        let _ = p;
        None
    }
    /// Whether [`CurveSpec::endo_phi_affine`]/[`CurveSpec::endo_phi_proj`]
    /// return `Some` (lets hot paths branch without an endomorphism
    /// evaluation).
    const HAS_ENDO: bool = false;
    /// Exact serialized size of a compressed point (`1` flag byte + `x`
    /// coordinate); [`Affine::to_bytes`] always emits this many bytes.
    const COMPRESSED_BYTES: usize;
    /// Human-readable name for diagnostics.
    const NAME: &'static str;
    /// Is `p` (assumed on the curve) in the order-`r` subgroup? This is the
    /// last step of the untrusted decode ladder ([`Affine::try_from_bytes`]).
    /// The default is the conservative full-order check `[r]·p = O` on the
    /// reference wNAF ladder (*not* the GLS dispatch, whose eigenvalue
    /// identity is exactly what an unchecked point could violate); `G2`
    /// overrides it with the ~4× cheaper ψ-eigenvalue check
    /// ([`crate::decode::g2_subgroup_check`]).
    fn is_in_subgroup(p: &Affine<Self>) -> bool {
        p.to_projective().mul_u256_wnaf(&params::fr_params().modulus).is_identity()
    }
}

/// The group `E(Fp) : y² = x³ + 4`.
#[derive(Clone, Copy)]
pub struct G1Spec;

/// The twist group `E'(Fp2) : y² = x³ + 4(1 + u)`.
#[derive(Clone, Copy)]
pub struct G2Spec;

static G1_GEN: OnceLock<Affine<G1Spec>> = OnceLock::new();
static G2_GEN: OnceLock<Affine<G2Spec>> = OnceLock::new();
static G1_TABLE: OnceLock<FixedBaseTable<G1Spec>> = OnceLock::new();
static G2_TABLE: OnceLock<FixedBaseTable<G2Spec>> = OnceLock::new();
static G2_ENDO: OnceLock<G2Endo> = OnceLock::new();

/// The twist (GLS) endomorphism `ψ` of `G2`, in the coordinate form
/// `ψ(x, y) = (c_x·x̄, c_y·ȳ)` (bar = `Fp2` conjugation, the `p`-power
/// Frobenius on the coordinate field). On `G2` it acts as multiplication
/// by the BLS parameter `x` (because `p ≡ x (mod r)`), so the negated map
/// `φ = −ψ = [|x|]` turns one 255-bit `G2` scalar multiplication into four
/// 64-bit ones sharing a doubling chain ([`Projective::mul_u256`]).
///
/// The coefficients are *derived*, not transcribed: `c_x` and `c_y` are
/// solved from `ψ(g₂) = [p mod r]·g₂` on the published generator, then the
/// start-up assertions check `c_y² = c_x³` and `c_y²·conj(b′) = b′` —
/// together these make the map "Frobenius followed by a curve
/// isomorphism", i.e. a genuine group endomorphism, so matching the
/// eigenvalue on the generator pins it on the whole (cyclic) group.
#[derive(Debug)]
pub struct G2Endo {
    c_x: Fp2,
    c_y: Fp2,
    /// `λ = r − |x|`, the eigenvalue of `ψ` on `G2`, as an integer.
    pub lambda: U256,
}

impl G2Endo {
    /// `ψ(P)` on projective coordinates (the identity maps to itself:
    /// all-coordinate conjugation-and-scale preserves `Z = 0`).
    pub fn psi(&self, p: &Projective<G2Spec>) -> Projective<G2Spec> {
        Projective {
            x: Field::mul(&p.x.conjugate(), &self.c_x),
            y: Field::mul(&p.y.conjugate(), &self.c_y),
            z: p.z.conjugate(),
        }
    }

    /// `φ(P) = −ψ(P) = [|x|]·P`.
    pub fn phi(&self, p: &Projective<G2Spec>) -> Projective<G2Spec> {
        self.psi(p).neg()
    }

    /// `φ` on an affine point (stays affine: `ψ` maps `Z = 1` to `Z = 1`).
    pub fn phi_affine(&self, p: &Affine<G2Spec>) -> Affine<G2Spec> {
        if p.infinity {
            return *p;
        }
        Affine {
            x: Field::mul(&p.x.conjugate(), &self.c_x),
            y: Field::neg(&Field::mul(&p.y.conjugate(), &self.c_y)),
            infinity: false,
        }
    }
}

/// The derived-and-verified `G2` twist endomorphism (lazily initialized;
/// see [`G2Endo`]).
pub fn g2_endo() -> &'static G2Endo {
    G2_ENDO.get_or_init(|| {
        let g = G2Spec::generator();
        // λ = r − |x|  (ψ multiplies by x, which is negative for BLS12-381)
        let (lambda, borrow) = params::fr_params().modulus.sbb(&U256::from_u64(params::BLS_X));
        assert!(!borrow, "BLS |x| must be below the group order");
        // Solve ψ(g) = λ·g for the coordinate constants. The wNAF ladder is
        // used deliberately: mul_u256 itself dispatches through this endo.
        let lg = g.to_projective().mul_u256_wnaf(&lambda).to_affine();
        let c_x = Field::mul(&lg.x, &g.x.conjugate().inverse().expect("generator x ≠ 0"));
        let c_y = Field::mul(&lg.y, &g.y.conjugate().inverse().expect("generator y ≠ 0"));
        // ψ = (π followed by the twist isomorphism u = c_y/c_x) requires:
        assert_eq!(c_y.square(), Field::mul(&c_x.square(), &c_x), "c_y² = c_x³ (isomorphism form)");
        assert_eq!(
            Field::mul(&c_y.square(), &G2Spec::b().conjugate()),
            G2Spec::b(),
            "u⁶·conj(b′) = b′ (isomorphism lands on the twist)"
        );
        let endo = G2Endo { c_x, c_y, lambda };
        // Belt and braces: the eigen-relation must also hold away from the
        // generator used to derive it.
        let probe = g.to_projective().mul_u256_wnaf(&U256::from_u64(0xfeed_beef));
        assert_eq!(
            endo.psi(&probe),
            probe.mul_u256_wnaf(&lambda),
            "ψ must act as [λ] on all of G2"
        );
        endo
    })
}

/// Decompose a scalar in base `|x|`: `k = Σ eᵢ·|x|ⁱ` with `eᵢ ∈ [0, |x|)`.
/// `None` when `k ≥ |x|⁴` (≈ 2^255.7 — never a reduced scalar; the caller
/// falls back to the generic ladder). Shared with the comb layer, whose
/// `G2` tooth points are endomorphism images addressed by these digits.
pub(crate) fn gls_digits(k: &U256) -> Option<[u64; 4]> {
    #[inline]
    fn divrem_u64(k: &U256, d: u64) -> (U256, u64) {
        let mut q = U256::ZERO;
        let mut rem = 0u128;
        for i in (0..4).rev() {
            let cur = (rem << 64) | k.0[i] as u128;
            q.0[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (q, rem as u64)
    }
    let x = params::BLS_X;
    let (q1, e0) = divrem_u64(k, x);
    let (q2, e1) = divrem_u64(&q1, x);
    let (q3, e2) = divrem_u64(&q2, x);
    if q3.highest_bit().is_some_and(|b| b >= 64) || q3.0[0] >= x {
        return None;
    }
    Some([e0, e1, e2, q3.0[0]])
}

/// Window width of the wNAF scalar-multiplication ladder.
const WNAF_WINDOW: u32 = 4;
/// Window width of the fixed-base generator tables.
const FIXED_BASE_WINDOW: u32 = 4;

/// Precomputed multiples of a fixed base: `windows[i][j] = (j+1)·2^{w·i}·B`.
/// A scalar multiplication then needs only one table addition per `w`-bit
/// window — no doublings at all.
pub struct FixedBaseTable<S: CurveSpec> {
    window: u32,
    windows: Vec<Vec<Projective<S>>>,
}

impl<S: CurveSpec> FixedBaseTable<S> {
    /// Precompute the per-window multiples of `base` for `w`-bit windows.
    pub fn new(base: &Projective<S>, window: u32) -> Self {
        assert!((1..=8).contains(&window));
        let num_windows = 256u32.div_ceil(window);
        let per_window = (1usize << window) - 1;
        let mut windows = Vec::with_capacity(num_windows as usize);
        let mut b = *base;
        for _ in 0..num_windows {
            let mut entries = Vec::with_capacity(per_window);
            let mut cur = b;
            for _ in 0..per_window {
                entries.push(cur);
                cur = cur.add(&b);
            }
            // after 2^w − 1 additions, `cur` is exactly 2^w·b
            b = cur;
            windows.push(entries);
        }
        Self { window, windows }
    }

    /// `k · base` via one table addition per window — no doublings.
    pub fn mul(&self, k: &U256) -> Projective<S> {
        let mut acc = Projective::identity();
        let top = match k.highest_bit() {
            None => return acc,
            Some(t) => t,
        };
        for (i, entries) in self.windows.iter().enumerate() {
            let shift = i as u32 * self.window;
            if shift > top {
                break;
            }
            let mut idx = 0usize;
            for b in 0..self.window {
                if k.bit(shift + b) {
                    idx |= 1 << b;
                }
            }
            if idx > 0 {
                acc = acc.add(&entries[idx - 1]);
            }
        }
        acc
    }
}

/// Width-`w` non-adjacent-form digits of `k`, least-significant first.
/// Every nonzero digit is odd and lies in `[−2^{w−1}, 2^{w−1})`; at most
/// one of any `w` consecutive digits is nonzero.
fn wnaf_digits(k: &U256, w: u32) -> Vec<i16> {
    if k.is_zero() {
        return Vec::new();
    }
    // one spare limb: adding |d| < 2^w after a negative digit may carry out
    let mut l = [0u64; 5];
    l[..4].copy_from_slice(&k.0);
    let mut digits = Vec::with_capacity(260);
    while l.iter().any(|&x| x != 0) {
        let d: i64 = if l[0] & 1 == 1 {
            let mask = (1u64 << w) - 1;
            let mut d = (l[0] & mask) as i64;
            if d >= 1i64 << (w - 1) {
                d -= 1i64 << w;
            }
            // subtract the digit so the low w bits become zero
            if d > 0 {
                let mut borrow = d as u64;
                for li in l.iter_mut() {
                    let (v, b) = li.overflowing_sub(borrow);
                    *li = v;
                    borrow = b as u64;
                    if borrow == 0 {
                        break;
                    }
                }
            } else {
                let mut carry = (-d) as u64;
                for li in l.iter_mut() {
                    let (v, c) = li.overflowing_add(carry);
                    *li = v;
                    carry = c as u64;
                    if carry == 0 {
                        break;
                    }
                }
            }
            d
        } else {
            0
        };
        digits.push(d as i16);
        // shift right by one bit
        for i in 0..5 {
            l[i] = (l[i] >> 1) | if i + 1 < 5 { l[i + 1] << 63 } else { 0 };
        }
    }
    digits
}

impl CurveSpec for G1Spec {
    type F = Fp;

    fn b() -> Fp {
        Fp::from_u64(4)
    }

    fn b3() -> Fp {
        Fp::from_u64(12)
    }

    fn generator() -> Affine<Self> {
        *G1_GEN.get_or_init(|| {
            let g = Affine::<G1Spec> {
                x: Fp::from_uint(&U384::from_hex(params::G1_X_HEX)),
                y: Fp::from_uint(&U384::from_hex(params::G1_Y_HEX)),
                infinity: false,
            };
            assert!(g.is_on_curve(), "published G1 generator not on curve");
            assert!(
                g.to_projective().mul_u256(&params::fr_params().modulus).is_identity(),
                "published G1 generator does not have order r"
            );
            g
        })
    }

    fn generator_table() -> &'static FixedBaseTable<Self> {
        G1_TABLE.get_or_init(|| {
            FixedBaseTable::new(&Self::generator().to_projective(), FIXED_BASE_WINDOW)
        })
    }

    const COMPRESSED_BYTES: usize = 49;
    const NAME: &'static str = "G1";
}

impl CurveSpec for G2Spec {
    type F = Fp2;

    fn b() -> Fp2 {
        // 4(1 + u)
        Fp2::new(Fp::from_u64(4), Fp::from_u64(4))
    }

    fn b3() -> Fp2 {
        Fp2::new(Fp::from_u64(12), Fp::from_u64(12))
    }

    fn generator() -> Affine<Self> {
        *G2_GEN.get_or_init(|| {
            let g = Affine::<G2Spec> {
                x: Fp2::new(
                    Fp::from_uint(&U384::from_hex(params::G2_X0_HEX)),
                    Fp::from_uint(&U384::from_hex(params::G2_X1_HEX)),
                ),
                y: Fp2::new(
                    Fp::from_uint(&U384::from_hex(params::G2_Y0_HEX)),
                    Fp::from_uint(&U384::from_hex(params::G2_Y1_HEX)),
                ),
                infinity: false,
            };
            assert!(g.is_on_curve(), "published G2 generator not on twist curve");
            // wNAF ladder on purpose: the dispatching mul_u256 routes
            // through the endomorphism, whose derivation needs this
            // generator — the reference ladder breaks the cycle.
            assert!(
                g.to_projective().mul_u256_wnaf(&params::fr_params().modulus).is_identity(),
                "published G2 generator does not have order r"
            );
            g
        })
    }

    fn generator_table() -> &'static FixedBaseTable<Self> {
        G2_TABLE.get_or_init(|| {
            FixedBaseTable::new(&Self::generator().to_projective(), FIXED_BASE_WINDOW)
        })
    }

    fn endo_phi_affine(p: &Affine<Self>) -> Option<Affine<Self>> {
        Some(g2_endo().phi_affine(p))
    }

    fn endo_phi_proj(p: &Projective<Self>) -> Option<Projective<Self>> {
        Some(g2_endo().phi(p))
    }

    const HAS_ENDO: bool = true;

    const COMPRESSED_BYTES: usize = 97;
    const NAME: &'static str = "G2";

    fn is_in_subgroup(p: &Affine<Self>) -> bool {
        crate::decode::g2_subgroup_check(p)
    }
}

/// An affine point (or the point at infinity).
#[derive(Clone, Copy)]
pub struct Affine<S: CurveSpec> {
    /// The x-coordinate (unspecified for the identity).
    pub x: S::F,
    /// The y-coordinate (unspecified for the identity).
    pub y: S::F,
    /// Is this the point at infinity?
    pub infinity: bool,
}

/// A point in homogeneous projective coordinates `(X : Y : Z)`.
#[derive(Clone, Copy)]
pub struct Projective<S: CurveSpec> {
    /// The `X` coordinate.
    pub x: S::F,
    /// The `Y` coordinate.
    pub y: S::F,
    /// The `Z` coordinate (`0` for the identity).
    pub z: S::F,
}

/// An affine `G1` point.
pub type G1Affine = Affine<G1Spec>;
/// A projective `G1` point.
pub type G1Projective = Projective<G1Spec>;
/// An affine `G2` point.
pub type G2Affine = Affine<G2Spec>;
/// A projective `G2` point.
pub type G2Projective = Projective<G2Spec>;

impl<S: CurveSpec> Affine<S> {
    /// The point at infinity.
    pub fn identity() -> Self {
        Self { x: S::F::zero(), y: S::F::one(), infinity: true }
    }

    /// Is this the point at infinity?
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Does the point satisfy the curve equation? (The identity does.)
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let y2 = self.y.square();
        let rhs = Field::add(&Field::mul(&self.x.square(), &self.x), &S::b());
        y2 == rhs
    }

    /// Lift to projective coordinates (`Z = 1`).
    pub fn to_projective(&self) -> Projective<S> {
        if self.infinity {
            Projective::identity()
        } else {
            Projective { x: self.x, y: self.y, z: S::F::one() }
        }
    }

    /// The group inverse `(x, −y)`.
    pub fn neg(&self) -> Self {
        Self { x: self.x, y: Field::neg(&self.y), infinity: self.infinity }
    }

    /// Canonical *compressed* byte encoding: a flag byte (bit 0 = infinity,
    /// bit 1 = sign of `y`) followed by the `x` coordinate (zeros for the
    /// identity). Always exactly [`CurveSpec::COMPRESSED_BYTES`] bytes, so
    /// the VO size accounting equals what is actually serialized.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(S::COMPRESSED_BYTES);
        if self.infinity {
            out.push(1u8);
            out.resize(S::COMPRESSED_BYTES, 0);
        } else {
            out.push((self.y.is_lexicographically_largest() as u8) << 1);
            out.extend_from_slice(&self.x.to_canonical_bytes());
        }
        debug_assert_eq!(out.len(), S::COMPRESSED_BYTES);
        out
    }
}

impl<S: CurveSpec> PartialEq for Affine<S> {
    fn eq(&self, other: &Self) -> bool {
        (self.infinity && other.infinity)
            || (!self.infinity && !other.infinity && self.x == other.x && self.y == other.y)
    }
}

impl<S: CurveSpec> Eq for Affine<S> {}

impl<S: CurveSpec> fmt::Debug for Affine<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "{}::identity", S::NAME)
        } else {
            write!(f, "{}({:?}, {:?})", S::NAME, self.x, self.y)
        }
    }
}

impl<S: CurveSpec> Projective<S> {
    /// The group identity `(0 : 1 : 0)`.
    pub fn identity() -> Self {
        Self { x: S::F::zero(), y: S::F::one(), z: S::F::zero() }
    }

    /// The published group generator.
    pub fn generator() -> Self {
        S::generator().to_projective()
    }

    /// Is this the group identity?
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Normalize to affine coordinates (one field inversion; use
    /// [`batch_to_affine`] for many points).
    pub fn to_affine(&self) -> Affine<S> {
        match self.z.inverse() {
            None => Affine::identity(),
            Some(zinv) => Affine {
                x: Field::mul(&self.x, &zinv),
                y: Field::mul(&self.y, &zinv),
                infinity: false,
            },
        }
    }

    /// The group inverse.
    pub fn neg(&self) -> Self {
        Self { x: self.x, y: Field::neg(&self.y), z: self.z }
    }

    /// Complete addition (RCB16 Algorithm 7, `a = 0`).
    pub fn add(&self, rhs: &Self) -> Self {
        let b3 = S::b3();
        let (x1, y1, z1) = (self.x, self.y, self.z);
        let (x2, y2, z2) = (rhs.x, rhs.y, rhs.z);

        let mut t0 = Field::mul(&x1, &x2);
        let mut t1 = Field::mul(&y1, &y2);
        let mut t2 = Field::mul(&z1, &z2);
        let mut t3 = Field::add(&x1, &y1);
        let mut t4 = Field::add(&x2, &y2);
        t3 = Field::mul(&t3, &t4);
        t4 = Field::add(&t0, &t1);
        t3 = Field::sub(&t3, &t4);
        t4 = Field::add(&y1, &z1);
        let mut x3 = Field::add(&y2, &z2);
        t4 = Field::mul(&t4, &x3);
        x3 = Field::add(&t1, &t2);
        t4 = Field::sub(&t4, &x3);
        x3 = Field::add(&x1, &z1);
        let mut y3 = Field::add(&x2, &z2);
        x3 = Field::mul(&x3, &y3);
        y3 = Field::add(&t0, &t2);
        y3 = Field::sub(&x3, &y3);
        x3 = Field::add(&t0, &t0);
        t0 = Field::add(&x3, &t0);
        t2 = Field::mul(&b3, &t2);
        let mut z3 = Field::add(&t1, &t2);
        t1 = Field::sub(&t1, &t2);
        y3 = Field::mul(&b3, &y3);
        x3 = Field::mul(&t4, &y3);
        t2 = Field::mul(&t3, &t1);
        x3 = Field::sub(&t2, &x3);
        y3 = Field::mul(&y3, &t0);
        t1 = Field::mul(&t1, &z3);
        y3 = Field::add(&t1, &y3);
        t0 = Field::mul(&t0, &t3);
        z3 = Field::mul(&z3, &t4);
        z3 = Field::add(&z3, &t0);

        Self { x: x3, y: y3, z: z3 }
    }

    /// Complete doubling (RCB16 Algorithm 9, `a = 0`).
    pub fn double(&self) -> Self {
        let b3 = S::b3();
        let (x, y, z) = (self.x, self.y, self.z);

        let mut t0 = Field::mul(&y, &y);
        let mut z3 = Field::add(&t0, &t0);
        z3 = Field::add(&z3, &z3);
        z3 = Field::add(&z3, &z3);
        let t1 = Field::mul(&y, &z);
        let mut t2 = Field::mul(&z, &z);
        t2 = Field::mul(&b3, &t2);
        let mut x3 = Field::mul(&t2, &z3);
        let mut y3 = Field::add(&t0, &t2);
        z3 = Field::mul(&t1, &z3);
        let t1b = Field::add(&t2, &t2);
        t2 = Field::add(&t1b, &t2);
        t0 = Field::sub(&t0, &t2);
        y3 = Field::mul(&t0, &y3);
        y3 = Field::add(&x3, &y3);
        let t1c = Field::mul(&x, &y);
        x3 = Field::mul(&t0, &t1c);
        x3 = Field::add(&x3, &x3);

        Self { x: x3, y: y3, z: z3 }
    }

    /// Add an affine point (identity-safe wrapper over [`Projective::add`]).
    pub fn add_affine(&self, rhs: &Affine<S>) -> Self {
        if rhs.infinity {
            *self
        } else {
            self.add(&rhs.to_projective())
        }
    }

    /// Scalar multiplication by a canonical 256-bit integer.
    ///
    /// Groups with a cheap `[|x|]` endomorphism (`G2`, via the twist/GLS
    /// map — see [`G2Endo`]) decompose the scalar in base `|x|` into four
    /// 64-bit digits and run one *shared* ~64-step double-and-add over the
    /// four endomorphism images: about a quarter of the doublings of the
    /// plain 256-bit ladder. Everything else (and any scalar too large to
    /// decompose) takes the width-4 wNAF ladder
    /// ([`Projective::mul_u256_wnaf`], retained as the property-tested
    /// reference).
    ///
    /// **Precondition (G2):** the point must lie in the order-`r` subgroup
    /// — `ψ` acts as `[p mod r]` only there, so the GLS identity is false
    /// for twist points of other order. This holds for every point in the
    /// system: points this crate constructs (generator multiples,
    /// endomorphism images, sums thereof) are in-subgroup by construction,
    /// and untrusted bytes only become points through
    /// [`Affine::try_from_bytes`], which enforces membership via
    /// [`CurveSpec::is_in_subgroup`] (the ψ-eigenvalue check for `G2`)
    /// before they can reach this method.
    pub fn mul_u256(&self, k: &U256) -> Self {
        if S::HAS_ENDO {
            if let Some(res) = self.mul_u256_gls(k) {
                return res;
            }
        }
        self.mul_u256_wnaf(k)
    }

    /// The GLS path of [`Projective::mul_u256`]: `k = Σ eᵢ·|x|ⁱ` gives
    /// `k·P = Σ eᵢ·φⁱ(P)`, evaluated Straus-style — per-base wNAF digit
    /// strings share one doubling chain.
    fn mul_u256_gls(&self, k: &U256) -> Option<Self> {
        let digits = gls_digits(k)?;
        if digits[1..].iter().all(|&d| d == 0) {
            // sub-|x| scalar: the decomposition degenerates to the plain
            // ladder, so skip the 4-lane table setup
            return None;
        }
        let nafs: [Vec<i16>; 4] =
            core::array::from_fn(|i| wnaf_digits(&U256::from_u64(digits[i]), WNAF_WINDOW));
        // bases φ⁰P … φ³P and their odd-multiple tables [B, 3B, 5B, 7B]
        // (only for lanes with a nonzero digit)
        let mut tables: [Option<[Self; 1 << (WNAF_WINDOW - 2)]>; 4] = [None; 4];
        let mut base = *self;
        for (i, naf) in nafs.iter().enumerate() {
            if i > 0 {
                base = S::endo_phi_proj(&base)?;
            }
            if naf.is_empty() {
                continue;
            }
            let two_b = base.double();
            let mut t = [Self::identity(); 1 << (WNAF_WINDOW - 2)];
            t[0] = base;
            for j in 1..t.len() {
                t[j] = t[j - 1].add(&two_b);
            }
            tables[i] = Some(t);
        }
        let top = nafs.iter().map(Vec::len).max().unwrap_or(0);
        let mut acc = Self::identity();
        for pos in (0..top).rev() {
            acc = acc.double();
            for (naf, table) in nafs.iter().zip(&tables) {
                let Some(table) = table else { continue };
                match naf.get(pos) {
                    Some(&d) if d > 0 => acc = acc.add(&table[(d as usize - 1) / 2]),
                    Some(&d) if d < 0 => acc = acc.add(&table[((-d) as usize - 1) / 2].neg()),
                    _ => {}
                }
            }
        }
        Some(acc)
    }

    /// Scalar multiplication by a canonical 256-bit integer, via
    /// width-4 windowed NAF: ~w/(w+1) of the double-and-add additions are
    /// eliminated using a precomputed odd-multiples table (subtractions are
    /// free because point negation is). Reference ladder for the GLS path
    /// of [`Projective::mul_u256`].
    pub fn mul_u256_wnaf(&self, k: &U256) -> Self {
        let digits = wnaf_digits(k, WNAF_WINDOW);
        if digits.is_empty() {
            return Self::identity();
        }
        // odd multiples: [P, 3P, 5P, …, (2^{w−1} − 1)P]
        let two_p = self.double();
        let mut table = [Self::identity(); 1 << (WNAF_WINDOW - 2)];
        table[0] = *self;
        for i in 1..table.len() {
            table[i] = table[i - 1].add(&two_p);
        }
        let mut acc = Self::identity();
        for &d in digits.iter().rev() {
            acc = acc.double();
            if d > 0 {
                acc = acc.add(&table[(d as usize - 1) / 2]);
            } else if d < 0 {
                acc = acc.add(&table[((-d) as usize - 1) / 2].neg());
            }
        }
        acc
    }

    /// Fixed-base scalar multiplication of the group generator using the
    /// cached per-window table: ~`256/w` additions and *no* doublings.
    pub fn generator_mul(k: &U256) -> Self {
        S::generator_table().mul(k)
    }

    /// [`Projective::generator_mul`] for a scalar-field element.
    pub fn generator_mul_fr(k: &Fr) -> Self {
        Self::generator_mul(&k.to_uint())
    }

    /// Scalar multiplication by a scalar-field element.
    pub fn mul_fr(&self, k: &Fr) -> Self {
        self.mul_u256(&k.to_uint())
    }

    /// Scalar multiplication by a small integer.
    pub fn mul_u64(&self, k: u64) -> Self {
        self.mul_u256(&U256::from_u64(k))
    }

    /// Equality as group elements (cross-multiplied projective compare).
    pub fn eq_point(&self, other: &Self) -> bool {
        match (self.is_identity(), other.is_identity()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            (false, false) => {
                Field::mul(&self.x, &other.z) == Field::mul(&other.x, &self.z)
                    && Field::mul(&self.y, &other.z) == Field::mul(&other.y, &self.z)
            }
        }
    }
}

impl<S: CurveSpec> PartialEq for Projective<S> {
    fn eq(&self, other: &Self) -> bool {
        self.eq_point(other)
    }
}

impl<S: CurveSpec> Eq for Projective<S> {}

impl<S: CurveSpec> fmt::Debug for Projective<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.to_affine())
    }
}

impl<S: CurveSpec> Default for Projective<S> {
    fn default() -> Self {
        Self::identity()
    }
}

impl<S: CurveSpec> core::ops::Add for Projective<S> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Projective::add(&self, &rhs)
    }
}

impl<S: CurveSpec> core::ops::Neg for Projective<S> {
    type Output = Self;
    fn neg(self) -> Self {
        Projective::neg(&self)
    }
}

impl<S: CurveSpec> core::ops::Sub for Projective<S> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Projective::add(&self, &rhs.neg())
    }
}

/// Batch-normalize projective points to affine with *one* shared field
/// inversion (Montgomery's trick) instead of one per point. Identity
/// points map to the affine identity.
pub fn batch_to_affine<S: CurveSpec>(points: &[Projective<S>]) -> Vec<Affine<S>> {
    let mut zs: Vec<S::F> = points.iter().map(|p| p.z).collect();
    crate::field::batch_invert(&mut zs);
    points
        .iter()
        .zip(&zs)
        .map(|(p, zinv)| {
            if p.is_identity() {
                Affine::identity()
            } else {
                Affine { x: Field::mul(&p.x, zinv), y: Field::mul(&p.y, zinv), infinity: false }
            }
        })
        .collect()
}

/// Sum many affine points with batched-affine chord additions: each halving
/// round pairs the points up, inverts all chord denominators with one
/// shared inversion, and emits the sums in affine form again. Per addition
/// this costs ~1 squaring + 5 multiplications (plus the amortized
/// inversion) versus ~14 multiplications for the complete projective
/// formulas — the accumulator prove/setup paths sum hundreds of distinct
/// public-key powers and get ~2× from it. Exceptional same-`x` pairs
/// (doublings / cancellations) are routed through the complete projective
/// formulas, so the function is total.
pub fn sum_affine<S: CurveSpec>(points: &[Affine<S>]) -> Projective<S> {
    let [sum] = &sum_affine_groups(core::slice::from_ref(&points.to_vec()))[..] else {
        unreachable!("one group in, one sum out")
    };
    *sum
}

/// [`sum_affine`] over many *independent* groups at once, sharing one
/// batched inversion per halving round across all of them — the comb
/// multi-exponentiation sums its 32 column groups this way, so the
/// amortization never degrades even when individual groups are short.
/// Returns one sum per input group, in order.
pub fn sum_affine_groups<S: CurveSpec>(groups: &[Vec<Affine<S>>]) -> Vec<Projective<S>> {
    let mut layers: Vec<Vec<Affine<S>>> =
        groups.iter().map(|g| g.iter().filter(|p| !p.infinity).copied().collect()).collect();
    let mut spills = vec![Projective::<S>::identity(); groups.len()];
    let mut denoms: Vec<S::F> = Vec::new();
    // (group, pair index) of each batched chord, in denominator order
    let mut fast: Vec<(usize, usize)> = Vec::new();
    while layers.iter().any(|l| l.len() > 1) {
        denoms.clear();
        fast.clear();
        for (gi, layer) in layers.iter().enumerate() {
            for i in 0..layer.len() / 2 {
                let (p, q) = (&layer[2 * i], &layer[2 * i + 1]);
                if p.x == q.x {
                    spills[gi] = spills[gi].add(&p.to_projective()).add(&q.to_projective());
                } else {
                    denoms.push(Field::sub(&q.x, &p.x));
                    fast.push((gi, i));
                }
            }
        }
        crate::field::batch_invert(&mut denoms);
        let mut next: Vec<Vec<Affine<S>>> =
            layers.iter().map(|l| Vec::with_capacity(l.len() / 2 + 1)).collect();
        for (k, &(gi, i)) in fast.iter().enumerate() {
            let (p, q) = (layers[gi][2 * i], layers[gi][2 * i + 1]);
            let lambda = Field::mul(&Field::sub(&q.y, &p.y), &denoms[k]);
            let x3 = Field::sub(&Field::sub(&lambda.square(), &p.x), &q.x);
            let y3 = Field::sub(&Field::mul(&lambda, &Field::sub(&p.x, &x3)), &p.y);
            next[gi].push(Affine { x: x3, y: y3, infinity: false });
        }
        for (gi, layer) in layers.iter().enumerate() {
            if layer.len() % 2 == 1 {
                next[gi].push(layer[layer.len() - 1]);
            }
        }
        layers = next;
    }
    layers
        .iter()
        .zip(spills)
        .map(|(layer, spill)| match layer.first() {
            Some(p) => spill.add(&p.to_projective()),
            None => spill,
        })
        .collect()
}

/// Pippenger bucket multi-exponentiation: `Σ scalars[i] · bases[i]`.
///
/// Window size is chosen from the input length; for very small inputs we
/// fall back to naive double-and-add.
pub fn multiexp<S: CurveSpec>(bases: &[Projective<S>], scalars: &[U256]) -> Projective<S> {
    assert_eq!(bases.len(), scalars.len(), "multiexp length mismatch");
    let n = bases.len();
    if n == 0 {
        return Projective::identity();
    }
    if n < 4 {
        let mut acc = Projective::identity();
        for (b, s) in bases.iter().zip(scalars) {
            acc = acc.add(&b.mul_u256(s));
        }
        return acc;
    }

    let c: u32 = match n {
        0..=15 => 3,
        16..=127 => 5,
        128..=1023 => 7,
        1024..=32767 => 9,
        _ => 12,
    };
    // Only sweep windows up to the highest set bit across all scalars: the
    // prove_disjoint path multiplies by small multiplicity counts, where
    // this collapses the 256-bit sweep to a handful of windows.
    let max_bits = scalars.iter().filter_map(|s| s.highest_bit()).max().map_or(0, |b| b + 1);
    if max_bits == 0 {
        return Projective::identity();
    }
    let num_windows = max_bits.div_ceil(c);
    let mut result = Projective::identity();

    for w in (0..num_windows).rev() {
        for _ in 0..c {
            result = result.double();
        }
        let mut buckets = vec![Projective::<S>::identity(); (1 << c) - 1];
        let shift = w * c;
        for (base, scalar) in bases.iter().zip(scalars) {
            // extract window bits [shift, shift+c)
            let mut idx = 0usize;
            for b in 0..c {
                if scalar.bit(shift + b) {
                    idx |= 1 << b;
                }
            }
            if idx > 0 {
                buckets[idx - 1] = buckets[idx - 1].add(base);
            }
        }
        // suffix-sum the buckets: Σ j * bucket[j]
        let mut running = Projective::identity();
        let mut window_sum = Projective::identity();
        for bucket in buckets.iter().rev() {
            running = running.add(bucket);
            window_sum = window_sum.add(&running);
        }
        result = result.add(&window_sum);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn generators_validate() {
        // The OnceLock init runs on-curve and order checks.
        let _ = G1Spec::generator();
        let _ = G2Spec::generator();
    }

    #[test]
    fn group_laws_g1() {
        let g = G1Projective::generator();
        let two_g = g.double();
        assert_eq!(two_g, g.add(&g));
        assert_eq!(g.add(&G1Projective::identity()), g);
        assert_eq!(g.add(&g.neg()), G1Projective::identity());
        let three = g.add(&two_g);
        assert_eq!(three, g.mul_u64(3));
        // associativity spot check
        let a = g.mul_u64(17);
        let b = g.mul_u64(23);
        let c = g.mul_u64(31);
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn group_laws_g2() {
        let g = G2Projective::generator();
        assert_eq!(g.double(), g.add(&g));
        assert_eq!(g.add(&g.neg()), G2Projective::identity());
        assert_eq!(g.mul_u64(5).add(&g.mul_u64(7)), g.mul_u64(12));
    }

    #[test]
    fn doubling_chain_stays_on_curve() {
        let mut p = G1Projective::generator();
        for _ in 0..10 {
            p = p.double();
            assert!(p.to_affine().is_on_curve());
        }
        let mut q = G2Projective::generator();
        for _ in 0..10 {
            q = q.double();
            assert!(q.to_affine().is_on_curve());
        }
    }

    #[test]
    fn scalar_mul_distributes() {
        let g = G1Projective::generator();
        let mut r = rng();
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        assert_eq!(g.mul_fr(&a).add(&g.mul_fr(&b)), g.mul_fr(&(a + b)));
        assert_eq!(g.mul_fr(&a).mul_fr(&b), g.mul_fr(&(a * b)));
    }

    #[test]
    fn scalar_mul_by_group_order_is_identity() {
        let r_mod = params::fr_params().modulus;
        assert!(G1Projective::generator().mul_u256(&r_mod).is_identity());
        assert!(G2Projective::generator().mul_u256(&r_mod).is_identity());
    }

    /// Plain MSB-first double-and-add, as an independent reference.
    fn naive_mul(p: &G1Projective, k: &U256) -> G1Projective {
        let mut acc = G1Projective::identity();
        if let Some(top) = k.highest_bit() {
            for i in (0..=top).rev() {
                acc = acc.double();
                if k.bit(i) {
                    acc = acc.add(p);
                }
            }
        }
        acc
    }

    #[test]
    fn g2_endo_acts_as_lambda() {
        let endo = g2_endo(); // runs the derivation asserts
        let g = G2Projective::generator();
        let p = g.mul_u256_wnaf(&U256::from_u64(987_654_321));
        assert_eq!(endo.psi(&p), p.mul_u256_wnaf(&endo.lambda));
        // φ = [|x|]
        assert_eq!(endo.phi(&p), p.mul_u256_wnaf(&U256::from_u64(params::BLS_X)));
        // affine form agrees, incl. the identity
        assert_eq!(endo.phi_affine(&p.to_affine()), endo.phi(&p).to_affine());
        assert!(endo.phi_affine(&G2Affine::identity()).is_identity());
    }

    #[test]
    fn gls_mul_matches_wnaf_ladder() {
        let mut r = rng();
        let g = G2Projective::generator();
        for _ in 0..10 {
            let k = Fr::random(&mut r).to_uint();
            assert_eq!(g.mul_u256(&k), g.mul_u256_wnaf(&k));
        }
        // boundary scalars: 0, 1, |x| ± 1, |x|², r − 1, r (order ⇒ identity)
        let x = params::BLS_X;
        let mut x2 = U256::ZERO;
        let wide = (x as u128) * (x as u128);
        x2.0[0] = wide as u64;
        x2.0[1] = (wide >> 64) as u64;
        let r_mod = params::fr_params().modulus;
        let (r_minus_1, _) = r_mod.sbb(&U256::from_u64(1));
        for k in
            [U256::ZERO, U256::from_u64(1), U256::from_u64(x - 1), U256::from_u64(x), x2, r_minus_1]
        {
            assert_eq!(g.mul_u256(&k), g.mul_u256_wnaf(&k), "k = {k:?}");
        }
        assert!(g.mul_u256(&r_mod).is_identity());
    }

    #[test]
    fn gls_digits_reassemble_scalar() {
        let mut r = rng();
        for _ in 0..20 {
            let k = Fr::random(&mut r).to_uint();
            let d = super::gls_digits(&k).expect("reduced scalars always decompose");
            // Σ dᵢ·|x|ⁱ must equal k exactly (checked with u128 carries)
            let x = params::BLS_X;
            let mut acc = U256::ZERO;
            for &di in d.iter().rev() {
                // acc = acc·x + di
                let mut carry = 0u128;
                let mut next = U256::ZERO;
                for i in 0..4 {
                    let cur = (acc.0[i] as u128) * (x as u128) + carry;
                    next.0[i] = cur as u64;
                    carry = cur >> 64;
                }
                assert_eq!(carry, 0);
                let (sum, c) = next.adc(&U256::from_u64(di));
                assert!(!c);
                acc = sum;
            }
            assert_eq!(acc, k);
        }
        // a value ≥ |x|⁴ must refuse to decompose
        let mut huge = U256::ZERO;
        huge.0[3] = u64::MAX;
        assert!(super::gls_digits(&huge).is_none());
    }

    #[test]
    fn wnaf_mul_matches_naive_ladder() {
        let mut r = rng();
        let g = G1Projective::generator();
        for _ in 0..10 {
            let k = Fr::random(&mut r).to_uint();
            assert_eq!(g.mul_u256(&k), naive_mul(&g, &k));
        }
        for small in [0u64, 1, 2, 7, 8, 15, 16, 255, u64::MAX] {
            let k = U256::from_u64(small);
            assert_eq!(g.mul_u256(&k), naive_mul(&g, &k));
        }
        assert!(super::wnaf_digits(&U256::ZERO, 4).is_empty());
    }

    #[test]
    fn generator_mul_matches_generic_mul() {
        let mut r = rng();
        for _ in 0..5 {
            let k = Fr::random(&mut r).to_uint();
            assert_eq!(G1Projective::generator_mul(&k), G1Projective::generator().mul_u256(&k));
            assert_eq!(G2Projective::generator_mul(&k), G2Projective::generator().mul_u256(&k));
        }
        assert!(G1Projective::generator_mul(&U256::ZERO).is_identity());
        assert_eq!(G1Projective::generator_mul(&U256::from_u64(1)), G1Projective::generator());
    }

    #[test]
    fn multiexp_matches_naive() {
        let g = G1Projective::generator();
        let mut r = rng();
        for n in [1usize, 3, 5, 20, 60] {
            let bases: Vec<_> = (0..n).map(|_| g.mul_u64(r.gen_range(1..1000))).collect();
            let scalars: Vec<_> = (0..n).map(|_| Fr::random(&mut r).to_uint()).collect();
            let expect = bases
                .iter()
                .zip(&scalars)
                .fold(G1Projective::identity(), |acc, (b, s)| acc.add(&b.mul_u256(s)));
            assert_eq!(multiexp(&bases, &scalars), expect, "n = {n}");
        }
    }

    #[test]
    fn multiexp_empty_and_zero_scalars() {
        assert!(multiexp::<G1Spec>(&[], &[]).is_identity());
        let g = G1Projective::generator();
        let zeros = vec![U256::ZERO; 8];
        let bases = vec![g; 8];
        assert!(multiexp(&bases, &zeros).is_identity());
    }

    #[test]
    fn compressed_bytes_are_exact_and_sign_aware() {
        let p = G1Projective::generator().mul_u64(9).to_affine();
        assert_eq!(p.to_bytes().len(), G1Spec::COMPRESSED_BYTES);
        assert_eq!(G1Affine::identity().to_bytes().len(), G1Spec::COMPRESSED_BYTES);
        // P and −P share x but must serialize differently (sign bit)
        assert_ne!(p.to_bytes(), p.neg().to_bytes());
        assert_eq!(p.to_bytes()[1..], p.neg().to_bytes()[1..]);
        let q = G2Projective::generator().mul_u64(5).to_affine();
        assert_eq!(q.to_bytes().len(), G2Spec::COMPRESSED_BYTES);
        assert_ne!(q.to_bytes(), q.neg().to_bytes());
    }

    #[test]
    fn batch_to_affine_matches_pointwise() {
        let g = G1Projective::generator();
        let mut points: Vec<G1Projective> = (1..=9u64).map(|i| g.mul_u64(i)).collect();
        points.insert(3, G1Projective::identity());
        let batch = batch_to_affine(&points);
        for (p, a) in points.iter().zip(&batch) {
            assert_eq!(p.to_affine(), *a);
        }
    }

    #[test]
    fn sum_affine_matches_projective_sum() {
        let g = G1Projective::generator();
        let mut r = rng();
        for n in [0usize, 1, 2, 3, 7, 20, 33] {
            let pts: Vec<G1Affine> =
                (0..n).map(|_| g.mul_u64(r.gen_range(1..10_000)).to_affine()).collect();
            let expect =
                pts.iter().fold(G1Projective::identity(), |acc, p| acc.add(&p.to_projective()));
            assert_eq!(sum_affine(&pts), expect, "n = {n}");
        }
        // exceptional inputs: identities, duplicates (doubling) and
        // cancellations must all route through the spill path correctly
        let p = g.mul_u64(5).to_affine();
        let exceptional =
            [p, p, p.neg(), G1Affine::identity(), g.to_affine(), G1Affine::identity()];
        let expect = g.add(&g.mul_u64(5));
        assert_eq!(sum_affine(&exceptional), expect);
    }

    #[test]
    fn affine_round_trip() {
        let g = G1Projective::generator().mul_u64(12345);
        let a = g.to_affine();
        assert!(a.is_on_curve());
        assert_eq!(a.to_projective(), g);
        assert!(G1Projective::identity().to_affine().is_identity());
    }
}
