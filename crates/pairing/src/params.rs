//! BLS12-381 parameters, derived and cross-checked at start-up.
//!
//! The only primary inputs are the BLS parameter `x = -0xd201_0000_0001_0000`
//! and the published field moduli / generators. Everything else — Montgomery
//! constants, inversion exponents, Frobenius coefficients, the hard part of
//! the final exponentiation — is *derived* here with [`ApInt`] arithmetic, and
//! the moduli themselves are re-derived from `x` and asserted equal to the
//! hard-coded values, so a transcription error cannot survive start-up.

use std::sync::OnceLock;

use vchain_bigint::{ApInt, MontParams, U256, U384};

/// `|x|` for the BLS parameter `x = -0xd201_0000_0001_0000`.
pub const BLS_X: u64 = 0xd201_0000_0001_0000;
/// The BLS parameter is negative for BLS12-381.
pub const BLS_X_IS_NEGATIVE: bool = true;

/// The base-field modulus `p` (381 bits).
pub const P_HEX: &str = "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab";
/// The scalar-field modulus `r` (255 bits).
pub const R_HEX: &str = "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001";

/// Lazy-reduction headroom for `Fp`: `⌊R/p⌋` with `R = 2^384`, i.e. how
/// many `< p²` products a double-width accumulator could absorb with raw
/// carrying adds before overflowing `p·R`. Pinned at start-up against the
/// runtime derivation ([`vchain_bigint::MontParams::wide_headroom`]); the
/// tower's `lazy` module documents why its accumulation depth (up to 12
/// terms) forces checked mod-`p·R` adds rather than relying on this.
///
/// `Fr` has headroom `⌊2^256/r⌋ = 2`, too small for any lazy scheme —
/// which is why only the `Fp` tower is lazified.
pub const FP_WIDE_HEADROOM: u64 = 9;

static FP_PARAMS: OnceLock<MontParams<6>> = OnceLock::new();
static FR_PARAMS: OnceLock<MontParams<4>> = OnceLock::new();
static DERIVED: OnceLock<Derived> = OnceLock::new();

/// Montgomery parameters for the base field `Fp`.
pub fn fp_params() -> &'static MontParams<6> {
    FP_PARAMS.get_or_init(|| {
        let p = U384::from_hex(P_HEX);
        verify_moduli_against_x();
        let params = MontParams::new(p);
        assert_eq!(
            params.wide_headroom(),
            FP_WIDE_HEADROOM,
            "FP_WIDE_HEADROOM constant out of sync with ⌊R/p⌋"
        );
        params
    })
}

/// Montgomery parameters for the scalar field `Fr`.
pub fn fr_params() -> &'static MontParams<4> {
    FR_PARAMS.get_or_init(|| MontParams::new(U256::from_hex(R_HEX)))
}

/// Integer constants derived from `p`, `r` and `x`.
pub struct Derived {
    /// `p − 2`, the Fermat inversion exponent for `Fp`.
    pub p_minus_2: Vec<u64>,
    /// `r − 2`, the Fermat inversion exponent for `Fr`.
    pub r_minus_2: Vec<u64>,
    /// `(p − 1)/6`, exponent of the primitive Frobenius coefficient
    /// `γ = ξ^{(p−1)/6}`.
    pub p_minus_1_over_6: Vec<u64>,
    /// `(p⁴ − p² + 1)/r`, the hard part of the final exponentiation.
    pub final_exp_hard: Vec<u64>,
    /// `3·(p⁴ − p² + 1)/r` — the exponent the cyclotomic addition chain
    /// `(x−1)²(x+p)(x²+p²−1) + 3` actually computes (the identity between
    /// the two forms is asserted here at start-up).
    pub final_exp_hard_x3: Vec<u64>,
    /// `(p + 1)/4` — would be the `Fp` square-root exponent (p ≡ 3 mod 4);
    /// kept for completeness and used by tests.
    pub p_plus_1_over_4: Vec<u64>,
}

/// Lazily derived integer constants (see [`Derived`]).
pub fn derived() -> &'static Derived {
    DERIVED.get_or_init(|| {
        let p = ApInt::from_hex(P_HEX);
        let r = ApInt::from_hex(R_HEX);
        let one = ApInt::one();

        let p_minus_2 = p.sub(&ApInt::from_u64(2));
        let r_minus_2 = r.sub(&ApInt::from_u64(2));

        let (p16, rem) = p.sub(&one).divrem(&ApInt::from_u64(6));
        assert!(rem.is_zero(), "p must be ≡ 1 (mod 6) for the sextic twist");
        let (_, rem4) = p.divrem(&ApInt::from_u64(4));
        assert_eq!(rem4, ApInt::from_u64(3), "p must be ≡ 3 (mod 4) so u² = −1 works");

        // hard part of the final exponentiation: (p^4 - p^2 + 1) / r
        let p2 = p.mul(&p);
        let p4 = p2.mul(&p2);
        let num = p4.sub(&p2).add(&one);
        let (hard, rem) = num.divrem(&r);
        assert!(rem.is_zero(), "r must divide p⁴ − p² + 1 (cyclotomic polynomial)");

        let (sqrt_exp, rem) = p.add(&one).divrem(&ApInt::from_u64(4));
        assert!(rem.is_zero());

        // The cyclotomic final-exponentiation chain computes
        // (x−1)²(x+p)(x²+p²−1) + 3 with x = −|x|; written in |x| = X:
        // (X+1)²·(p−X)·(X²+p²−1) + 3. Assert it equals 3·hard so the chain
        // in `pairing_impl` is pinned to the derived integer exponent.
        let hard3 = hard.mul(&ApInt::from_u64(3));
        let xx = ApInt::from_u64(BLS_X);
        let xp1_sq = xx.add(&one).mul(&xx.add(&one));
        let formula =
            xp1_sq.mul(&p.sub(&xx)).mul(&xx.mul(&xx).add(&p2).sub(&one)).add(&ApInt::from_u64(3));
        assert_eq!(
            formula.to_hex(),
            hard3.to_hex(),
            "cyclotomic hard-part decomposition must equal 3·(p⁴−p²+1)/r"
        );

        Derived {
            p_minus_2: p_minus_2.limbs().to_vec(),
            r_minus_2: r_minus_2.limbs().to_vec(),
            p_minus_1_over_6: p16.limbs().to_vec(),
            final_exp_hard: hard.limbs().to_vec(),
            final_exp_hard_x3: hard3.limbs().to_vec(),
            p_plus_1_over_4: sqrt_exp.limbs().to_vec(),
        }
    })
}

/// Re-derive `p` and `r` from the BLS parameter `x` and assert they match
/// the hard-coded hex constants:
///
/// * `r = x⁴ − x² + 1`
/// * `p = ((x − 1)² · r) / 3 + x`  (with `x` negative).
fn verify_moduli_against_x() {
    let x = ApInt::from_u64(BLS_X);
    const { assert!(BLS_X_IS_NEGATIVE, "derivation below assumes negative x") };
    let one = ApInt::one();
    let r = x.pow(4).sub(&x.pow(2)).add(&one);
    assert_eq!(r.to_hex(), R_HEX, "scalar modulus mismatch with BLS parameter");
    // (x - 1)^2 = (|x| + 1)^2 for negative x
    let xm1_sq = x.add(&one).mul(&x.add(&one));
    let (q, rem) = xm1_sq.mul(&r).divrem(&ApInt::from_u64(3));
    assert!(rem.is_zero());
    let p = q.sub(&x); // + x with x negative
    assert_eq!(p.to_hex(), P_HEX, "base modulus mismatch with BLS parameter");
}

// The curve constants below are the published BLS12-381 generators; they are
// validated at start-up by `curve::G1Spec`/`G2Spec` (on-curve + prime-order
// checks), so a transcription error panics the first time a group is used.

/// G1 generator x-coordinate.
pub const G1_X_HEX: &str = "17f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905a14e3a3f171bac586c55e83ff97a1aeffb3af00adb22c6bb";
/// G1 generator y-coordinate.
pub const G1_Y_HEX: &str = "08b3f481e3aaa0f1a09e30ed741d8ae4fcf5e095d5d00af600db18cb2c04b3edd03cc744a2888ae40caa232946c5e7e1";

/// G2 generator x-coordinate (c0 + c1·u).
pub const G2_X0_HEX: &str = "024aa2b2f08f0a91260805272dc51051c6e47ad4fa403b02b4510b647ae3d1770bac0326a805bbefd48056c8c121bdb8";
/// G2 generator x-coordinate, `c1` part.
pub const G2_X1_HEX: &str = "13e02b6052719f607dacd3a088274f65596bd0d09920b61ab5da61bbdc7f5049334cf11213945d57e5ac7d055d042b7e";
/// G2 generator y-coordinate (c0 + c1·u).
pub const G2_Y0_HEX: &str = "0ce5d527727d6e118cc9cdc6da2e351aadfd9baa8cbdd3a76d429a695160d12c923ac9cc3baca289e193548608b82801";
/// G2 generator y-coordinate, `c1` part.
pub const G2_Y1_HEX: &str = "0606c4a02ea734cc32acd2b02bc28b99cb3e287e85a763af267492ab572e99ab3f370d275cec1da1aaa9075ff05f79be";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_initialize_and_agree() {
        let fp = fp_params();
        assert_eq!(fp.modulus, U384::from_hex(P_HEX));
        let fr = fr_params();
        assert_eq!(fr.modulus, U256::from_hex(R_HEX));
    }

    #[test]
    fn derived_constants() {
        let d = derived();
        // (p-1)/6 has 378-379 bits => 6 limbs
        assert_eq!(d.p_minus_1_over_6.len(), 6);
        // hard part ~ 4*381 - 255 = 1269 bits => 20 limbs
        assert_eq!(d.final_exp_hard.len(), 20);
        // p - 2 ends with ...aaa9 (p ends in ...aaab)
        assert_eq!(d.p_minus_2[0], 0xb9fe_ffff_ffff_aaa9);
    }
}
