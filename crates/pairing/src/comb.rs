//! Fixed-base comb (Lim–Lee) multi-exponentiation.
//!
//! A Pippenger [`crate::multiexp`] treats its bases as one-shot inputs, so
//! every call pays the full window sweep: at the small sizes the
//! accumulator commitments use (a few dozen points), that is thousands of
//! variable-base group operations. But the bases of a polynomial
//! commitment are *fixed public-key powers* `g^{sⁱ}` — the same vector for
//! every proof a key ever makes — which is exactly the shape fixed-base
//! precomputation exploits.
//!
//! The comb table of one base `B` stores, for every non-empty subset
//! `m ⊆ {0, …, 7}` of the eight "teeth", the point
//! `T[m] = Σ_{k ∈ m} 2^{32k}·B` (255 affine points, ~49 KiB in `G2`).
//! A 256-bit scalar is then read column-wise: its comb digit at position
//! `j` is the byte formed by bits `j, j+32, …, j+224`, and
//!
//! ```text
//! k·B = Σ_{j=0}^{31} 2^j · T[digit_j(k)]
//! ```
//!
//! — 32 table lookups, no per-scalar doublings. [`comb_multiexp`] goes one
//! step further across a whole multi-exponentiation: the lookups of *all*
//! scalars are bucketed per column, each column is summed with batched
//! affine additions ([`crate::sum_affine_groups`]: one shared field
//! inversion per halving round), and a single 31-doubling Horner pass
//! combines the 32 column sums. For an `n`-term commitment that is `~32n`
//! cheap affine additions plus 63 projective operations, against
//! thousands of full projective operations for cold Pippenger.
//!
//! [`PowersCombCache`] owns the lazily-built tables for a prefix of a
//! public power vector; the accumulator keys hold one per source group.

use std::sync::RwLock;

use vchain_bigint::U256;

use crate::curve::{
    batch_to_affine, gls_digits, multiexp, sum_affine_groups, Affine, CurveSpec, Projective,
};

/// Number of comb teeth: one scalar bit per tooth, per column.
pub const COMB_TEETH: u32 = 8;
/// Distance in bits between adjacent teeth; `COMB_TEETH × COMB_SPACING`
/// covers the full 256-bit scalar width.
pub const COMB_SPACING: u32 = 32;

/// How a scalar's bits are distributed over the eight comb teeth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DigitScheme {
    /// Tooth `t` reads bit `32t + column` of the raw scalar; tooth points
    /// are the doubling chain `2^{32t}·B`.
    Straight,
    /// GLS teeth: the scalar is first decomposed in base `|x|` into four
    /// 64-bit digits `e₀..e₃` ([`crate::curve::gls_digits`]); tooth
    /// `t = 2i + j` reads bit `32j + column` of `eᵢ`, and its point is
    /// `2^{32j}·φⁱ(B)` — six of the eight tooth points come from the cheap
    /// endomorphism instead of 32-doubling chains, cutting the tooth
    /// doublings per table from 224 to 32 ("halved" is an understatement:
    /// 7×). Requires [`CurveSpec::HAS_ENDO`].
    Gls,
}

/// Precomputed comb table for one fixed base (see the [module docs](self)).
pub struct FixedBaseComb<S: CurveSpec> {
    /// `table[m − 1] = Σ_{t ∈ bits(m)} tooth_t`, for every non-empty tooth
    /// subset `m ∈ 1..=255`, in affine form.
    table: Vec<Affine<S>>,
    scheme: DigitScheme,
}

impl<S: CurveSpec> FixedBaseComb<S> {
    /// Build the comb tables for many bases at once.
    ///
    /// Per base this costs 32 doublings (`G2`, GLS teeth) or
    /// `(COMB_TEETH − 1) · COMB_SPACING = 224` doublings (straight teeth)
    /// plus one addition per remaining subset; the final
    /// projective→affine normalization is batched across *all* bases with
    /// a single shared inversion.
    pub fn build_many(bases: &[Projective<S>]) -> Vec<Self> {
        let scheme = if S::HAS_ENDO { DigitScheme::Gls } else { DigitScheme::Straight };
        let subsets = (1usize << COMB_TEETH) - 1;
        let mut all = Vec::with_capacity(bases.len() * subsets);
        for base in bases {
            let mut tooth = Vec::with_capacity(COMB_TEETH as usize);
            match scheme {
                DigitScheme::Straight => {
                    // tooth[t] = 2^{32t}·B
                    let mut cur = *base;
                    for _ in 0..COMB_TEETH {
                        tooth.push(cur);
                        for _ in 0..COMB_SPACING {
                            cur = cur.double();
                        }
                    }
                }
                DigitScheme::Gls => {
                    // tooth[2i + j] = 2^{32j}·φⁱ(B): one 32-doubling chain,
                    // everything else by endomorphism images
                    let mut lo = *base;
                    let mut hi = *base;
                    for _ in 0..COMB_SPACING {
                        hi = hi.double();
                    }
                    for lane in 0..4 {
                        if lane > 0 {
                            lo = S::endo_phi_proj(&lo).expect("HAS_ENDO groups provide φ");
                            hi = S::endo_phi_proj(&hi).expect("HAS_ENDO groups provide φ");
                        }
                        tooth.push(lo);
                        tooth.push(hi);
                    }
                }
            }
            // table[m] = table[m with lowest bit cleared] + tooth[lowest bit]
            let mut tbl = vec![Projective::<S>::identity(); subsets + 1];
            for m in 1..=subsets {
                let low = m & (m - 1);
                tbl[m] = tbl[low].add(&tooth[m.trailing_zeros() as usize]);
            }
            all.extend_from_slice(&tbl[1..]);
        }
        let affine = batch_to_affine(&all);
        affine.chunks(subsets).map(|c| Self { table: c.to_vec(), scheme }).collect()
    }

    /// The table entry for a non-zero comb digit.
    fn entry(&self, digit: usize) -> &Affine<S> {
        &self.table[digit - 1]
    }

    /// The base point this comb was built for (the singleton subset of
    /// tooth 0).
    fn base(&self) -> &Affine<S> {
        &self.table[0]
    }

    /// The per-column digits of `k` under this comb's scheme, or `None`
    /// when the scalar cannot be decomposed (GLS scheme, `k ≥ |x|⁴` — the
    /// caller falls back to a plain ladder on [`FixedBaseComb::base`]).
    fn digits(&self, k: &U256) -> Option<[u8; COMB_SPACING as usize]> {
        match self.scheme {
            DigitScheme::Straight => {
                let mut out = [0u8; COMB_SPACING as usize];
                for (j, d) in out.iter_mut().enumerate() {
                    let mut m = 0u8;
                    for t in 0..COMB_TEETH {
                        if k.bit(j as u32 + COMB_SPACING * t) {
                            m |= 1 << t;
                        }
                    }
                    *d = m;
                }
                Some(out)
            }
            DigitScheme::Gls => {
                let e = gls_digits(k)?;
                let mut out = [0u8; COMB_SPACING as usize];
                for (j, d) in out.iter_mut().enumerate() {
                    let mut m = 0u8;
                    for t in 0..COMB_TEETH {
                        let (lane, half) = ((t >> 1) as usize, t & 1);
                        if (e[lane] >> (32 * half + j as u32)) & 1 == 1 {
                            m |= 1 << t;
                        }
                    }
                    *d = m;
                }
                Some(out)
            }
        }
    }

    /// Single-scalar fixed-base multiplication through the comb: 32 table
    /// lookups and a 31-doubling Horner pass — no per-scalar doubling
    /// chains. Used by the shared key-generation layer
    /// ([`generator_powers`]).
    pub fn mul(&self, k: &U256) -> Projective<S> {
        let Some(digits) = self.digits(k) else {
            return self.base().to_projective().mul_u256(k);
        };
        let mut acc = Projective::identity();
        for &d in digits.iter().rev() {
            acc = acc.double();
            if d != 0 {
                acc = acc.add_affine(self.entry(d as usize));
            }
        }
        acc
    }
}

impl<S: CurveSpec> core::fmt::Debug for FixedBaseComb<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "FixedBaseComb<{}>({} entries)", S::NAME, self.table.len())
    }
}

/// `Σ scalars[i] · bases[i]` where each base is represented by its
/// prebuilt [`FixedBaseComb`].
///
/// ```
/// use vchain_bigint::U256;
/// use vchain_pairing::comb::{comb_multiexp, FixedBaseComb};
/// use vchain_pairing::{multiexp, G1Projective};
///
/// // "public key powers": g, 2g, 4g, 8g — any fixed bases work
/// let bases: Vec<G1Projective> =
///     (0..4).map(|i| G1Projective::generator().mul_u64(1 << i)).collect();
/// let combs = FixedBaseComb::build_many(&bases);
/// let scalars: Vec<U256> = (0..4).map(|i| U256::from_u64(1000 + 97 * i)).collect();
/// // 32 column lookups per scalar + one Horner pass == cold Pippenger
/// assert_eq!(comb_multiexp(&combs, &scalars), multiexp(&bases, &scalars));
/// ```
pub fn comb_multiexp<S: CurveSpec>(combs: &[FixedBaseComb<S>], scalars: &[U256]) -> Projective<S> {
    assert_eq!(combs.len(), scalars.len(), "comb multiexp length mismatch");
    // Bucket every (scalar, column) lookup by column…
    let mut columns: Vec<Vec<Affine<S>>> =
        (0..COMB_SPACING).map(|_| Vec::with_capacity(scalars.len())).collect();
    // …(scalars outside the digit domain — only possible for raw
    // non-reduced integers under the GLS scheme — fall back to a plain
    // ladder on the comb's base and join at the end)…
    let mut slow = Projective::identity();
    for (comb, k) in combs.iter().zip(scalars) {
        let Some(digits) = comb.digits(k) else {
            slow = slow.add(&comb.base().to_projective().mul_u256(k));
            continue;
        };
        for (column, &digit) in columns.iter_mut().zip(digits.iter()) {
            if digit != 0 {
                column.push(*comb.entry(digit as usize));
            }
        }
    }
    // …sum all columns with shared batched-affine rounds…
    let sums = sum_affine_groups(&columns);
    // …and combine with one Horner pass: Σ 2ʲ·S_j.
    let mut acc = Projective::identity();
    for s in sums.iter().rev() {
        acc = acc.double().add(s);
    }
    acc.add(&slow)
}

/// Build the power vector `k₀·G, k₁·G, …` of the group generator through
/// a comb of `G` — the shared fixed-base layer of *both* accumulator key
/// generations. Each power costs 32 comb lookups plus a 31-doubling
/// Horner pass, against ~64 full-width window additions for the naive
/// per-scalar table walk it replaced (`G2` combs additionally build their
/// teeth from endomorphism images).
pub fn generator_powers<S: CurveSpec>(scalars: &[U256]) -> Vec<Projective<S>> {
    let comb = &FixedBaseComb::<S>::build_many(&[Projective::generator()])[0];
    scalars.iter().map(|k| comb.mul(k)).collect()
}

/// Lazily built comb tables over a prefix of a fixed power vector
/// `g^{s⁰}, g^{s¹}, …` — the shape of an accumulator public key.
///
/// The cache starts empty and grows geometrically the first time a
/// commitment needs a longer prefix, so a key only ever pays for the
/// degrees its workload actually commits. Commitments past `limit` fall
/// back to the cold Pippenger [`multiexp`] (they amortize their own window
/// sweep, and an unbounded cache over an 8192-power key would cost
/// hundreds of MiB).
///
/// ```
/// use vchain_bigint::U256;
/// use vchain_pairing::comb::PowersCombCache;
/// use vchain_pairing::{multiexp, G1Projective};
///
/// let powers: Vec<G1Projective> =
///     (0..6u64).map(|i| G1Projective::generator().mul_u64(100 + i)).collect();
/// let cache = PowersCombCache::new(4); // combs cover at most 4 powers
/// let scalars: Vec<U256> = (3..6u64).map(U256::from_u64).collect();
/// let fast = cache.multiexp(&powers, &scalars); // builds combs for powers[..3]
/// assert_eq!(fast, multiexp(&powers[..3], &scalars));
/// let all: Vec<U256> = (1..7u64).map(U256::from_u64).collect();
/// // 6 > limit: transparently served by the fallback path instead
/// assert_eq!(cache.multiexp(&powers, &all), multiexp(&powers, &all));
/// ```
pub struct PowersCombCache<S: CurveSpec> {
    combs: RwLock<Vec<FixedBaseComb<S>>>,
    limit: usize,
}

impl<S: CurveSpec> PowersCombCache<S> {
    /// An empty cache that will precompute combs for at most the first
    /// `limit` powers.
    pub fn new(limit: usize) -> Self {
        Self { combs: RwLock::new(Vec::new()), limit }
    }

    /// The comb-coverage bound this cache was created with.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// How many powers currently have comb tables (for diagnostics).
    pub fn covered(&self) -> usize {
        self.combs.read().expect("comb cache poisoned").len()
    }

    /// `Σ scalars[i] · powers[i]`, through the comb tables when
    /// `scalars.len() ≤ limit` (building any missing prefix first) and
    /// through the generic [`multiexp`] otherwise.
    ///
    /// Panics if there are more scalars than powers — the cache commits
    /// against a *prefix* of the power vector, so that call has no
    /// meaning.
    pub fn multiexp(&self, powers: &[Projective<S>], scalars: &[U256]) -> Projective<S> {
        let n = scalars.len();
        assert!(
            n <= powers.len(),
            "PowersCombCache::multiexp: {n} scalars against {} powers",
            powers.len()
        );
        if n == 0 {
            return Projective::identity();
        }
        if n > self.limit {
            return multiexp(&powers[..n], scalars);
        }
        {
            let combs = self.combs.read().expect("comb cache poisoned");
            if combs.len() >= n {
                return comb_multiexp(&combs[..n], scalars);
            }
        }
        {
            // Grow geometrically so repeated slightly-larger requests do
            // not rebuild from scratch each time. The write guard covers
            // only table construction; the multi-exponentiation below runs
            // under a read guard so concurrent committers are not
            // serialized behind it.
            let mut combs = self.combs.write().expect("comb cache poisoned");
            if combs.len() < n {
                let target = n.max(2 * combs.len()).max(16).min(self.limit).min(powers.len());
                let built = FixedBaseComb::build_many(&powers[combs.len()..target]);
                combs.extend(built);
            }
        }
        let combs = self.combs.read().expect("comb cache poisoned");
        comb_multiexp(&combs[..n], scalars)
    }
}

impl<S: CurveSpec> core::fmt::Debug for PowersCombCache<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PowersCombCache<{}>({}/{} covered)", S::NAME, self.covered(), self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{G1Projective, G1Spec, G2Projective};
    use crate::field::Field;
    use crate::fp::Fr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn powers<S: CurveSpec>(g: Projective<S>, n: usize) -> Vec<Projective<S>> {
        // distinct, structureless-enough bases: g^(i²+1)
        (0..n).map(|i| g.mul_u64((i * i + 1) as u64)).collect()
    }

    fn rand_scalars(n: usize, seed: u64) -> Vec<U256> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Fr::random(&mut rng).to_uint()).collect()
    }

    #[test]
    fn comb_matches_multiexp_g1() {
        for n in [1usize, 2, 5, 16] {
            let bases = powers(G1Projective::generator(), n);
            let combs = FixedBaseComb::build_many(&bases);
            let scalars = rand_scalars(n, 7 + n as u64);
            assert_eq!(comb_multiexp(&combs, &scalars), multiexp(&bases, &scalars), "n = {n}");
        }
    }

    #[test]
    fn comb_matches_multiexp_g2() {
        let bases = powers(G2Projective::generator(), 6);
        let combs = FixedBaseComb::build_many(&bases);
        let scalars = rand_scalars(6, 99);
        assert_eq!(comb_multiexp(&combs, &scalars), multiexp(&bases, &scalars));
    }

    #[test]
    fn comb_handles_degenerate_scalars() {
        let bases = powers(G1Projective::generator(), 4);
        let combs = FixedBaseComb::build_many(&bases);
        // zeros, ones, and a maximal-ish scalar with every tooth set
        let scalars = vec![
            U256::from_u64(0),
            U256::from_u64(1),
            Fr::from_u64(u64::MAX).to_uint(),
            (-Fr::one()).to_uint(), // r − 1: top bits set in every spacing band
        ];
        assert_eq!(comb_multiexp(&combs, &scalars), multiexp(&bases, &scalars));
    }

    #[test]
    fn comb_digit_reassembles_scalar() {
        // Σ_j 2^j · digit_j(k) interpreted tooth-wise must reproduce k.
        let k = rand_scalars(1, 3)[0];
        let comb = &FixedBaseComb::<G1Spec>::build_many(&[G1Projective::generator()])[0];
        assert_eq!(comb.scheme, DigitScheme::Straight);
        let digits = comb.digits(&k).expect("straight digits always exist");
        let mut acc = [0u64; 4];
        for (j, &m) in digits.iter().enumerate() {
            for t in 0..COMB_TEETH {
                if m & (1 << t) != 0 {
                    let bit = j as u32 + COMB_SPACING * t;
                    acc[(bit / 64) as usize] |= 1u64 << (bit % 64);
                }
            }
        }
        assert_eq!(acc, k.0);
    }

    #[test]
    fn gls_comb_digits_reassemble_decomposition() {
        // Under the GLS scheme, tooth t = 2i + j of column c must carry bit
        // 32j + c of the base-|x| digit eᵢ.
        let k = rand_scalars(1, 11)[0];
        let comb =
            &FixedBaseComb::<crate::curve::G2Spec>::build_many(&[G2Projective::generator()])[0];
        assert_eq!(comb.scheme, DigitScheme::Gls);
        let digits = comb.digits(&k).expect("reduced scalars decompose");
        let e = crate::curve::gls_digits(&k).unwrap();
        let mut acc = [0u64; 4];
        for (c, &m) in digits.iter().enumerate() {
            for t in 0..COMB_TEETH {
                if m & (1 << t) != 0 {
                    acc[(t >> 1) as usize] |= 1u64 << (32 * (t & 1) + c as u32);
                }
            }
        }
        assert_eq!(acc, e);
    }

    #[test]
    fn comb_single_mul_matches_ladder() {
        let g1 = G1Projective::generator().mul_u64(3);
        let g2 = G2Projective::generator().mul_u64(3);
        let c1 = &FixedBaseComb::build_many(&[g1])[0];
        let c2 = &FixedBaseComb::build_many(&[g2])[0];
        for k in rand_scalars(4, 17) {
            assert_eq!(c1.mul(&k), g1.mul_u256(&k));
            assert_eq!(c2.mul(&k), g2.mul_u256(&k));
        }
        assert!(c1.mul(&U256::ZERO).is_identity());
        // a full-width raw integer exceeds the GLS digit domain and must
        // take the fallback ladder, still correctly
        let mut huge = U256::ZERO;
        huge.0[3] = u64::MAX;
        assert_eq!(c2.mul(&huge), g2.mul_u256(&huge));
    }

    #[test]
    fn generator_powers_match_naive_ladder() {
        let scalars = rand_scalars(5, 23);
        let g1 = generator_powers::<G1Spec>(&scalars);
        let g2 = generator_powers::<crate::curve::G2Spec>(&scalars);
        for ((k, p1), p2) in scalars.iter().zip(&g1).zip(&g2) {
            assert_eq!(*p1, G1Projective::generator().mul_u256(k));
            assert_eq!(*p2, G2Projective::generator().mul_u256(k));
        }
    }

    #[test]
    fn cache_grows_lazily_and_falls_back() {
        let bases = powers(G1Projective::generator(), 12);
        let cache: PowersCombCache<G1Spec> = PowersCombCache::new(8);
        assert_eq!(cache.covered(), 0);
        let s3 = rand_scalars(3, 1);
        assert_eq!(cache.multiexp(&bases, &s3), multiexp(&bases[..3], &s3));
        assert!(cache.covered() >= 3, "prefix built on demand");
        let s8 = rand_scalars(8, 2);
        assert_eq!(cache.multiexp(&bases, &s8), multiexp(&bases[..8], &s8));
        assert_eq!(cache.covered(), 8, "growth clamps to the limit");
        // beyond the limit: correct answer via the fallback, no growth
        let s12 = rand_scalars(12, 3);
        assert_eq!(cache.multiexp(&bases, &s12), multiexp(&bases, &s12));
        assert_eq!(cache.covered(), 8);
    }

    #[test]
    fn empty_comb_multiexp_is_identity() {
        assert_eq!(comb_multiexp::<G1Spec>(&[], &[]), Projective::identity());
    }
}
