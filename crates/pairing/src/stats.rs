//! Lightweight operation counters for tests and benchmarks: they prove the
//! batching invariants ("n-pair `multi_pairing` = 1 shared Miller loop +
//! 1 final exponentiation") and the projective-loop invariant ("a Miller
//! loop performs zero base-field inversions") without instrumenting call
//! sites. The counters are *per-thread* so that concurrent callers (e.g.
//! parallel tests) cannot perturb each other's deltas.
//!
//! This is a leaf module: the field layer increments the inversion counter
//! without depending on the pairing layer above it.

use core::cell::Cell;

thread_local! {
    pub(crate) static FINAL_EXPS: Cell<u64> = const { Cell::new(0) };
    pub(crate) static MILLER_LOOPS: Cell<u64> = const { Cell::new(0) };
    pub(crate) static FIELD_INVERSIONS: Cell<u64> = const { Cell::new(0) };
}

/// Final exponentiations performed by the current thread.
pub fn final_exps() -> u64 {
    FINAL_EXPS.with(Cell::get)
}

/// Shared Miller-loop executions by the current thread (a
/// `multi_miller_loop` over any number of pairs counts once).
pub fn miller_loops() -> u64 {
    MILLER_LOOPS.with(Cell::get)
}

/// Base-field (`Fp`/`Fr`) inversions performed by the current thread.
/// Every tower inversion bottoms out here, so a delta of zero across a
/// region proves the region is inversion-free.
pub fn field_inversions() -> u64 {
    FIELD_INVERSIONS.with(Cell::get)
}
