//! Lightweight operation counters for tests and benchmarks: they prove the
//! batching invariants ("n-pair `multi_pairing` = 1 shared Miller loop +
//! 1 final exponentiation") and the projective-loop invariant ("a Miller
//! loop performs zero base-field inversions") without instrumenting call
//! sites. The counters are *per-thread* so that concurrent callers (e.g.
//! parallel tests) cannot perturb each other's deltas.
//!
//! This is a leaf module: the field layer increments the inversion counter
//! without depending on the pairing layer above it.

use core::cell::Cell;

thread_local! {
    pub(crate) static FINAL_EXPS: Cell<u64> = const { Cell::new(0) };
    pub(crate) static MILLER_LOOPS: Cell<u64> = const { Cell::new(0) };
    pub(crate) static FIELD_INVERSIONS: Cell<u64> = const { Cell::new(0) };
    pub(crate) static MONTGOMERY_REDUCTIONS: Cell<u64> = const { Cell::new(0) };
    pub(crate) static MONTGOMERY_REDUCTIONS_EAGER: Cell<u64> = const { Cell::new(0) };
}

/// Bump the eager-reference reduction counter by `n` (one per base-field
/// Montgomery multiplication performed by an `*_eager` tower op).
#[inline]
pub(crate) fn count_eager_reductions(n: u64) {
    MONTGOMERY_REDUCTIONS_EAGER.with(|c| c.set(c.get() + n));
}

/// Final exponentiations performed by the current thread.
pub fn final_exps() -> u64 {
    FINAL_EXPS.with(Cell::get)
}

/// Shared Miller-loop executions by the current thread (a
/// `multi_miller_loop` over any number of pairs counts once).
pub fn miller_loops() -> u64 {
    MILLER_LOOPS.with(Cell::get)
}

/// Base-field (`Fp`/`Fr`) inversions performed by the current thread.
/// Every tower inversion bottoms out here, so a delta of zero across a
/// region proves the region is inversion-free.
pub fn field_inversions() -> u64 {
    FIELD_INVERSIONS.with(Cell::get)
}

/// Montgomery reductions performed by the current thread on the *lazy*
/// (production) tower path — one per double-width accumulator closed by
/// `FpWide::reduce`, i.e. one per tower output coefficient. Raw `Fp`
/// multiplications outside the tower ops are deliberately not counted (a
/// thread-local bump on the single hottest primitive would be measurable),
/// so deltas of this counter are comparable with
/// [`montgomery_reductions_eager`] deltas over the *same* tower operation,
/// not absolute totals.
pub fn montgomery_reductions() -> u64 {
    MONTGOMERY_REDUCTIONS.with(Cell::get)
}

/// Montgomery reductions performed by the current thread inside the
/// `*_eager` reference tower ops (one per base-field multiplication they
/// issue). Split from [`montgomery_reductions`] so differential tests can
/// assert the lazy path performs strictly fewer reductions than the eager
/// reference for the same operation.
pub fn montgomery_reductions_eager() -> u64 {
    MONTGOMERY_REDUCTIONS_EAGER.with(Cell::get)
}
