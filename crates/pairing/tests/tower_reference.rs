//! Property tests pinning the 2-3-2 tower `Fp12` to the semantics of the
//! flat representation `Fp2[w]/(w⁶ − ξ)` it replaced: multiplication is
//! checked against schoolbook polynomial reduction on flat coefficients,
//! inversion against the Fermat power `a^{p¹²−2}`, Frobenius against
//! `a^{p}`, and the cyclotomic final-exponentiation chain against one
//! generic power by the derived integer exponent.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain_bigint::ApInt;
use vchain_pairing::{
    final_exponentiation, multi_miller_loop, multi_pairing, pairing, params, Field, Fp12, Fp2,
    G1Projective, G2Projective, Gt,
};

fn rand_fp12(seed: u64) -> Fp12 {
    Fp12::random(&mut StdRng::seed_from_u64(seed))
}

/// Schoolbook product of two flat degree-5 polynomials over `Fp2`, reduced
/// with `w⁶ ↦ ξ` — the multiplication algorithm of the old representation.
fn flat_schoolbook_mul(a: &[Fp2; 6], b: &[Fp2; 6]) -> [Fp2; 6] {
    let mut wide = [Fp2::zero(); 11];
    for i in 0..6 {
        for j in 0..6 {
            wide[i + j] += Field::mul(&a[i], &b[j]);
        }
    }
    let mut c = [Fp2::zero(); 6];
    c.copy_from_slice(&wide[..6]);
    for k in 6..11 {
        c[k - 6] += wide[k].mul_by_xi();
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tower_mul_matches_flat_schoolbook(seed in 0u64..u64::MAX) {
        let a = rand_fp12(seed);
        let b = rand_fp12(seed.wrapping_add(0x9E37_79B9));
        let tower = Field::mul(&a, &b).coeffs();
        let flat = flat_schoolbook_mul(&a.coeffs(), &b.coeffs());
        prop_assert_eq!(tower, flat);
        // and squaring is just self-multiplication
        prop_assert_eq!(a.square().coeffs(), flat_schoolbook_mul(&a.coeffs(), &a.coeffs()));
    }

    #[test]
    fn tower_frobenius_matches_p_power(seed in 0u64..u64::MAX) {
        let a = rand_fp12(seed);
        prop_assert_eq!(a.frobenius(), a.pow_limbs(&params::fp_params().modulus.0));
    }
}

proptest! {
    // the Fermat power over ~4572 bits is slow — keep the case count low
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn tower_inverse_matches_fermat_power(seed in 0u64..u64::MAX) {
        let p = ApInt::from_hex(params::P_HEX);
        let p12_minus_2 = p.pow(12).sub(&ApInt::from_u64(2));
        let a = rand_fp12(seed);
        let inv = a.inverse().expect("nonzero");
        prop_assert_eq!(Field::mul(&a, &inv), Fp12::one());
        prop_assert_eq!(inv, a.pow_limbs(p12_minus_2.limbs()));
    }

    #[test]
    fn final_exponentiation_matches_generic_power(seed in 0u64..u64::MAX) {
        let f = rand_fp12(seed);
        // easy part as an independent reference: (p⁶−1)(p²+1) power
        let t = Field::mul(&f.conjugate(), &f.inverse().expect("nonzero"));
        let easy = Field::mul(&t.frobenius2(), &t);
        let reference = easy.pow_limbs(&params::derived().final_exp_hard_x3);
        prop_assert_eq!(final_exponentiation(&f).0, reference);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn shared_miller_loop_equals_per_pair_product(k in 1u64..1000, n in 2usize..5) {
        let pairs: Vec<_> = (0..n as u64)
            .map(|i| {
                (
                    G1Projective::generator().mul_u64(k + i).to_affine(),
                    G2Projective::generator().mul_u64(2 * k + i).to_affine(),
                )
            })
            .collect();
        // shared loop and per-pair loops agree after final exponentiation
        let shared = multi_pairing(&pairs);
        let product = pairs.iter().fold(Gt::one(), |acc, (p, q)| acc.mul(&pairing(p, q)));
        prop_assert_eq!(shared, product);
        // the raw shared Miller value is *identical* to the product of
        // single-pair Miller values (squaring distributes over the product)
        let raw = multi_miller_loop(&pairs);
        let raw_product = pairs.iter().fold(Fp12::one(), |acc, pair| {
            Field::mul(&acc, &multi_miller_loop(core::slice::from_ref(pair)))
        });
        prop_assert_eq!(raw, raw_product);
        prop_assert_eq!(final_exponentiation(&raw), product);
    }
}
