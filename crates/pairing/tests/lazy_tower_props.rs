//! Property tests pinning the lazy-reduction tower against the retained
//! eager reference ops, to the strongest possible standard: **byte
//! equality** of canonical serializations, not just field equality.
//!
//! Two operand regimes:
//!
//! * **max-operand** — every `Fp` coefficient is `p − 1`, the largest
//!   canonical value. This drives every double-width accumulator through
//!   its worst case (products of maximal operands, deepest Karatsuba
//!   sums), pinning the compile-time bound analysis of `pairing::lazy`
//!   (the mod-`p·R` renormalization really is exercised: the tower's
//!   accumulation depth exceeds the raw-add headroom `⌊R/p⌋ = 9`).
//! * **random** — seeded random elements, mixed signs and magnitudes.
//!
//! Also covers structured near-boundary operands (coefficients in
//! `{0, 1, p−1}` chosen per-seed) so carries at limb seams are hit, and
//! the pairing-level twins (`multi_miller_loop_eager`,
//! `final_exponentiation_eager`, `pairing_eager`).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain_pairing::{
    final_exponentiation, final_exponentiation_eager, pairing, pairing_eager, Field, Fp, Fp12, Fp2,
    Fp6, Fr, G1Projective, G2Projective,
};

/// The largest canonical base-field element, `p − 1`.
fn fp_max() -> Fp {
    Field::neg(&Fp::one())
}

/// Pick a "nasty" coefficient from `{0, 1, p−1, random}` by selector.
fn nasty_fp(sel: u8, rng: &mut StdRng) -> Fp {
    match sel % 4 {
        0 => Fp::zero(),
        1 => Fp::one(),
        2 => fp_max(),
        _ => Fp::random(rng),
    }
}

fn nasty_fp2(seed: u64) -> Fp2 {
    let mut rng = StdRng::seed_from_u64(seed);
    Fp2::new(nasty_fp(seed as u8, &mut rng), nasty_fp((seed >> 8) as u8, &mut rng))
}

fn nasty_fp6(seed: u64) -> Fp6 {
    Fp6::new(nasty_fp2(seed), nasty_fp2(seed ^ 0xa5a5), nasty_fp2(seed ^ 0x5a5a))
}

fn nasty_fp12(seed: u64) -> Fp12 {
    Fp12::new(nasty_fp6(seed), nasty_fp6(seed.rotate_left(17)))
}

fn max_fp2() -> Fp2 {
    Fp2::new(fp_max(), fp_max())
}

fn max_fp6() -> Fp6 {
    Fp6::new(max_fp2(), max_fp2(), max_fp2())
}

fn max_fp12() -> Fp12 {
    Fp12::new(max_fp6(), max_fp6())
}

/// Byte-level equality through the canonical serialization.
macro_rules! assert_bytes_eq {
    ($lazy:expr, $eager:expr, $what:literal) => {
        assert_eq!(
            $lazy.to_canonical_bytes(),
            $eager.to_canonical_bytes(),
            concat!($what, ": lazy and eager disagree at the byte level")
        )
    };
}

/// Every lazy-vs-eager pair at all three tower levels for one operand set.
fn check_all_ops(a2: Fp2, b2: Fp2, a6: Fp6, b6: Fp6, a12: Fp12, b12: Fp12) {
    assert_bytes_eq!(Field::mul(&a2, &b2), a2.mul_eager(&b2), "Fp2 mul");
    assert_bytes_eq!(a2.square(), a2.square_eager(), "Fp2 square");

    assert_bytes_eq!(Field::mul(&a6, &b6), a6.mul_eager(&b6), "Fp6 mul");
    assert_bytes_eq!(a6.square(), a6.square_eager(), "Fp6 square");
    assert_bytes_eq!(a6.mul_by_01(&a2, &b2), a6.mul_by_01_eager(&a2, &b2), "Fp6 mul_by_01");
    assert_bytes_eq!(a6.mul_by_1(&b2), a6.mul_by_1_eager(&b2), "Fp6 mul_by_1");

    assert_bytes_eq!(Field::mul(&a12, &b12), a12.mul_eager(&b12), "Fp12 mul");
    assert_bytes_eq!(a12.square(), a12.square_eager(), "Fp12 square");
    let l2 = b2.mul_by_xi();
    assert_bytes_eq!(
        a12.mul_by_line(&a2, &b2, &l2),
        a12.mul_by_line_eager(&a2, &b2, &l2),
        "Fp12 mul_by_line"
    );
}

#[test]
fn max_operands_byte_equal_through_every_op() {
    // All coefficients p−1: the deepest double-width accumulations at
    // their largest possible magnitudes.
    check_all_ops(max_fp2(), max_fp2(), max_fp6(), max_fp6(), max_fp12(), max_fp12());
}

#[test]
fn cyclotomic_ops_byte_equal_in_subgroup() {
    // Cyclotomic ops have a subgroup precondition, so max-operand inputs
    // are out of domain; project random elements through the easy part.
    for seed in 0..4u64 {
        let f = Fp12::random(&mut StdRng::seed_from_u64(seed));
        let t = Field::mul(&f.conjugate(), &f.inverse().unwrap());
        let z = Field::mul(&t.frobenius2(), &t);
        assert_bytes_eq!(z.cyclotomic_square(), z.cyclotomic_square_eager(), "cyclotomic square");
        assert_bytes_eq!(
            z.cyclotomic_pow_x_compressed(),
            z.cyclotomic_pow_x_compressed_eager(),
            "Karabina pow_x chain"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn nasty_operands_byte_equal_through_every_op(seed in 0u64..u64::MAX) {
        // Coefficients drawn from {0, 1, p−1, random}: limb-seam carries,
        // vanishing Karatsuba terms, and maximal products mixed freely.
        let a2 = nasty_fp2(seed);
        let b2 = nasty_fp2(seed ^ 0xdead_beef);
        let a6 = nasty_fp6(seed.wrapping_mul(3));
        let b6 = nasty_fp6(seed.wrapping_mul(5) ^ 0xfeed);
        let a12 = nasty_fp12(seed.wrapping_mul(7));
        let b12 = nasty_fp12(seed.wrapping_mul(11) ^ 0xbead);
        check_all_ops(a2, b2, a6, b6, a12, b12);
    }

    #[test]
    fn random_operands_byte_equal_through_every_op(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a2, b2) = (Fp2::random(&mut rng), Fp2::random(&mut rng));
        let (a6, b6) = (Fp6::random(&mut rng), Fp6::random(&mut rng));
        let (a12, b12) = (Fp12::random(&mut rng), Fp12::random(&mut rng));
        check_all_ops(a2, b2, a6, b6, a12, b12);
    }
}

proptest! {
    // full pairings are ~ms each — keep the case count low
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn pairing_twins_agree(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = G1Projective::generator().mul_fr(&Fr::random(&mut rng)).to_affine();
        let q = G2Projective::generator().mul_fr(&Fr::random(&mut rng)).to_affine();
        prop_assert_eq!(pairing_eager(&p, &q), pairing(&p, &q));
        let f = Fp12::random(&mut rng);
        prop_assert_eq!(final_exponentiation_eager(&f), final_exponentiation(&f));
    }
}
