//! Property tests pinning the PR-5 fast paths to their retained reference
//! implementations: Karabina compressed cyclotomic squaring against the
//! Granger–Scott chain, the GLS endomorphism-split `G2` scalar
//! multiplication against the wNAF ladder, and the GLS-toothed `G2` comb
//! multi-exponentiation against cold Pippenger.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain_bigint::U256;
use vchain_pairing::{
    comb_multiexp, final_exponentiation, final_exponentiation_gs, multiexp, Field, FixedBaseComb,
    Fp12, Fr, G2Projective,
};

/// A random element of the cyclotomic subgroup (easy-part projection).
fn rand_cyclotomic(seed: u64) -> Fp12 {
    let f = Fp12::random(&mut StdRng::seed_from_u64(seed));
    let t = Field::mul(&f.conjugate(), &f.inverse().expect("random is nonzero"));
    Field::mul(&t.frobenius2(), &t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Compressed-vs-full squaring chains and the x-power they compose to.
    #[test]
    fn karabina_matches_granger_scott(seed in 0u64..u64::MAX) {
        let z = rand_cyclotomic(seed);
        let mut full = z;
        let mut comp = z.compress_cyclotomic();
        for _ in 0..4 {
            full = full.cyclotomic_square();
            comp = comp.square();
        }
        prop_assert_eq!(comp.decompress().expect("nondegenerate"), full);
        prop_assert_eq!(z.cyclotomic_pow_x_compressed(), z.cyclotomic_pow_x());
    }

    /// The two final-exponentiation pipelines agree on arbitrary inputs.
    #[test]
    fn final_exponentiation_pipelines_agree(seed in 0u64..u64::MAX) {
        let f = Fp12::random(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(final_exponentiation(&f), final_exponentiation_gs(&f));
    }

    /// GLS-decomposed G2 scalar multiplication equals the wNAF ladder.
    #[test]
    fn gls_mul_matches_wnaf(seed in 0u64..u64::MAX, point in 1u64..1_000_000) {
        let p = G2Projective::generator().mul_u64(point);
        let k = Fr::random(&mut StdRng::seed_from_u64(seed)).to_uint();
        prop_assert_eq!(p.mul_u256(&k), p.mul_u256_wnaf(&k));
    }
}

proptest! {
    // comb builds are comparatively expensive — fewer cases
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// GLS-toothed G2 combs agree with cold Pippenger on random inputs.
    #[test]
    fn g2_gls_comb_matches_pippenger(seed in 0u64..u64::MAX, n in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let bases: Vec<G2Projective> =
            (0..n).map(|_| G2Projective::generator().mul_fr(&Fr::random(&mut rng))).collect();
        let combs = FixedBaseComb::build_many(&bases);
        let scalars: Vec<U256> = (0..n).map(|_| Fr::random(&mut rng).to_uint()).collect();
        prop_assert_eq!(comb_multiexp(&combs, &scalars), multiexp(&bases, &scalars));
        // degenerate scalars exercise empty columns and the zero digit
        let zeros = vec![U256::ZERO; n];
        prop_assert!(comb_multiexp(&combs, &zeros).is_identity());
    }
}
