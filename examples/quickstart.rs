//! Quickstart: mine a small vChain, run one verifiable time-window query
//! as a light client, and watch tampering get caught.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain::acc::Acc2;
use vchain::chain::{Difficulty, LightClient, Object};
use vchain::core::miner::{IndexScheme, Miner, MinerConfig};
use vchain::core::query::{Query, RangeSpec};
use vchain::core::verify::verify_response;
use vchain::core::vo::VoSize;

fn main() {
    // ---- system parameters (public) -----------------------------------
    let cfg = MinerConfig {
        scheme: IndexScheme::Both, // intra-block + inter-block indexes
        skip_levels: 3,
        domain_bits: 8, // numeric attributes live in [0, 255]
        difficulty: Difficulty(4),
        bloom_bits_per_key: 10,
    };
    println!("generating accumulator public key…");
    let acc = Acc2::keygen(2048, &mut StdRng::seed_from_u64(42));

    // ---- the miner builds blocks with embedded ADS --------------------
    let mut miner = Miner::new(cfg, acc);
    let listings = [
        (10, 220, &["Sedan", "Benz"][..]),
        (10, 240, &["Sedan", "BMW"]),
        (20, 95, &["Van", "Benz"]),
        (20, 210, &["Sedan", "Audi"]),
        (30, 230, &["Sedan", "Benz"]),
        (30, 60, &["Truck", "Toyota"]),
    ];
    let mut by_ts: std::collections::BTreeMap<u64, Vec<Object>> = Default::default();
    for (i, (ts, price, kws)) in listings.iter().enumerate() {
        by_ts.entry(*ts).or_default().push(Object::new(
            i as u64 + 1,
            *ts,
            vec![*price],
            kws.iter().map(|s| s.to_string()).collect(),
        ));
    }
    for (ts, objs) in by_ts {
        let h = miner.mine_block(ts, objs);
        println!("mined block {h} at t={ts}");
    }

    // ---- a light client holds headers only ----------------------------
    let mut light = LightClient::new(cfg.difficulty);
    for h in miner.headers() {
        light.sync_header(h).expect("valid header chain");
    }
    println!("light client synced {} headers ({} bits)", light.len(), light.storage_bits());

    // ---- the untrusted SP answers a Boolean range query ---------------
    // Example 3.2 of the paper: price ∈ [200, 250] ∧ Sedan ∧ (Benz ∨ BMW)
    let query = Query {
        time_window: Some((0, 40)),
        ranges: vec![RangeSpec { dim: 0, lo: 200, hi: 250 }],
        keywords: vec![vec!["Sedan".into()], vec!["Benz".into(), "BMW".into()]],
    };
    let q = query.compile(cfg.domain_bits);
    let sp = miner.into_service_provider();
    let resp = sp.time_window_query(&q);
    println!(
        "SP returned {} results, VO = {} bytes",
        resp.result_count(),
        resp.vo_size_bytes(&sp.acc)
    );

    // ---- the user verifies soundness & completeness -------------------
    let results = verify_response(&q, &resp, &light, &cfg, &sp.acc).expect("honest SP verifies");
    for o in &results {
        println!("verified result: object {} price {} {:?}", o.id, o.numeric[0], o.keywords);
    }
    assert_eq!(results.len(), 3);

    // ---- a tampering SP is caught --------------------------------------
    let mut forged = resp.clone();
    forged.results[0].1[0].numeric[0] = 999 % 256; // falsify a price
    match verify_response(&q, &forged, &light, &cfg, &sp.acc) {
        Err(e) => println!("tampered response rejected: {e}"),
        Ok(_) => unreachable!("forgery must not verify"),
    }
}
