//! Domain example 1 (paper Example 3.1): a cryptocurrency transaction
//! search service. Each object is a coin transfer ⟨timestamp, amount,
//! {sender/receiver addresses}⟩; users issue verifiable time-window queries
//! like "all transfers of amount ≥ X touching address A between t₁ and t₂".
//!
//! ```sh
//! cargo run --release --example bitcoin_explorer
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain::acc::Acc1;
use vchain::chain::{Difficulty, LightClient};
use vchain::core::miner::{IndexScheme, Miner, MinerConfig};
use vchain::core::query::{Query, RangeSpec};
use vchain::core::verify::verify_response;
use vchain::core::vo::VoSize;
use vchain::datagen::{Dataset, WorkloadSpec};

fn main() {
    let cfg = MinerConfig {
        scheme: IndexScheme::Both,
        skip_levels: 3,
        domain_bits: 8,
        difficulty: Difficulty(4),
        bloom_bits_per_key: 10,
    };
    println!("generating accumulator public key (q-SDH construction)…");
    // Construction 1: compact public key sized by the max multiset degree.
    let acc = Acc1::keygen(2048, &mut StdRng::seed_from_u64(7)).with_fast_setup(true);

    // ETH-shaped stream: log-normal-ish amounts, sparse Zipf addresses.
    let spec = WorkloadSpec::paper_defaults(Dataset::Ethereum, 16);
    let workload = spec.generate();
    println!(
        "simulated {} transactions in {} blocks (15s interval)",
        workload.total_objects(),
        workload.blocks.len()
    );

    let mut miner = Miner::new(cfg, acc);
    for (ts, objs) in &workload.blocks {
        miner.mine_block(*ts, objs.clone());
    }
    let mut light = LightClient::new(cfg.difficulty);
    for h in miner.headers() {
        light.sync_header(h).unwrap();
    }

    // "transfer amount in the top half, touching a hot address, last 8 blocks"
    let window = workload.window_of_last(8);
    let hot_addr = "addr:00000".to_string(); // rank-0 address of the Zipf pool
    let query = Query {
        time_window: Some(window),
        ranges: vec![RangeSpec { dim: 0, lo: 128, hi: 255 }],
        keywords: vec![vec![hot_addr.clone()]],
    };
    let q = query.compile(cfg.domain_bits);

    let sp = miner.into_service_provider();
    let t0 = std::time::Instant::now();
    let resp = sp.time_window_query(&q);
    let sp_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let results = verify_response(&q, &resp, &light, &cfg, &sp.acc).expect("verifies");
    let user_time = t1.elapsed();

    println!("query: amount ∈ [128, 255] ∧ {hot_addr} over blocks {}..{}", window.0, window.1);
    println!(
        "  {} verified results | SP {:.3}s | user {:.3}s | VO {:.1} KB",
        results.len(),
        sp_time.as_secs_f64(),
        user_time.as_secs_f64(),
        resp.vo_size_bytes(&sp.acc) as f64 / 1024.0
    );
    for o in results.iter().take(5) {
        println!("  tx {}: amount {} parties {:?}", o.id, o.numeric[0], o.keywords);
    }
}
