//! Domain example 2 (paper Example 3.2): a blockchain-based car rental
//! marketplace with *subscription* queries. Users register standing
//! interests like ⟨price ∈ [200, 250], "Sedan" ∧ ("Benz" ∨ "BMW")⟩ and the
//! SP pushes verifiable updates on every confirmed block — here in lazy
//! mode (§7.2), so mismatching blocks are aggregated with the skip list
//! and ProofSum until a match appears.
//!
//! ```sh
//! cargo run --release --example car_rental_subscriptions
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vchain::acc::Acc2;
use vchain::chain::{Difficulty, LightClient, Object};
use vchain::core::miner::{IndexScheme, Miner, MinerConfig};
use vchain::core::query::{Query, RangeSpec};
use vchain::core::subscribe::{verify_subscription_update, SubscriptionEngine, SubscriptionMode};

fn main() {
    let cfg = MinerConfig {
        scheme: IndexScheme::Both, // lazy mode needs the inter-block index
        skip_levels: 3,
        domain_bits: 8,
        difficulty: Difficulty(4),
        bloom_bits_per_key: 10,
    };
    println!("generating accumulator public key (q-DHE construction)…");
    let acc = Acc2::keygen(2048, &mut StdRng::seed_from_u64(11));

    let mut miner = Miner::new(cfg, acc.clone());
    let mut light = LightClient::new(cfg.difficulty);
    let mut engine = SubscriptionEngine::new(cfg, acc.clone(), SubscriptionMode::Lazy, true);

    // Example 3.2's subscription.
    let query = Query {
        time_window: None,
        ranges: vec![RangeSpec { dim: 0, lo: 200, hi: 250 }],
        keywords: vec![vec!["Sedan".into()], vec!["Benz".into(), "BMW".into()]],
    };
    let qid = engine.register(&query);
    let cq = query.compile(cfg.domain_bits);
    println!("registered subscription {qid}: price ∈ [200,250] ∧ Sedan ∧ (Benz ∨ BMW)");

    // Stream rental listings; matches are rare so lazy mode defers proofs.
    let mut rng = StdRng::seed_from_u64(3);
    let kinds = ["Sedan", "Van", "Truck"];
    let brands = ["Benz", "BMW", "Audi", "Toyota"];
    let mut next_id = 0u64;
    let mut total_updates = 0usize;
    for b in 0..12u64 {
        let ts = (b + 1) * 30;
        let listings: Vec<Object> = (0..4)
            .map(|_| {
                next_id += 1;
                // bias away from matches so deferral is visible
                let kind =
                    kinds[if rng.gen_bool(0.15) { 0 } else { rng.gen_range(1..kinds.len()) }];
                let brand = brands[rng.gen_range(0..brands.len())];
                Object::new(
                    next_id,
                    ts,
                    vec![rng.gen_range(40..=255)],
                    vec![kind.to_string(), brand.to_string()],
                )
            })
            .collect();
        let h = miner.mine_block(ts, listings);
        light.sync_header(miner.headers()[h as usize].clone()).unwrap();
        let block = miner.store().block(h).unwrap().clone();
        let indexed = miner.indexed()[h as usize].clone();
        let updates = engine.process_block(&block, &indexed);
        for u in &updates {
            total_updates += 1;
            let verified =
                verify_subscription_update(&cq, u, &light, &cfg, &acc).expect("update verifies");
            println!(
                "block {h}: update covering blocks {}..{} with {} verified match(es)",
                u.from_height,
                u.to_height,
                verified.len()
            );
            for o in verified {
                println!("  → listing {} price {} {:?}", o.id, o.numeric[0], o.keywords);
            }
        }
        if updates.is_empty() {
            println!("block {h}: no update (mismatch buffered lazily)");
        }
    }

    // Deregister: any buffered mismatch coverage is flushed and verified.
    if let Some(u) = engine.deregister(qid) {
        let verified =
            verify_subscription_update(&cq, &u, &light, &cfg, &acc).expect("flush verifies");
        println!(
            "deregistered: final flush covers blocks {}..{} ({} results, {} coverage entries)",
            u.from_height,
            u.to_height,
            verified.len(),
            u.coverage.len()
        );
    }
    println!("total published updates: {total_updates}");
}
