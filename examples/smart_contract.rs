//! Domain example 3 (paper Appendix E): deploying vChain as a *logical
//! chain*. Appendix E sketches a Solidity contract whose `BuildvChain`
//! function assembles the intra/inter indexes and stores each block keyed
//! by its hash; this example mirrors that flow in Rust — an append-only
//! `chainstorage` map populated block by block through the same
//! build-index → hash-header → store pipeline — and then runs a verifiable
//! query against it.
//!
//! ```sh
//! cargo run --release --example smart_contract
//! ```

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain::acc::Acc2;
use vchain::chain::{Difficulty, LightClient, Object};
use vchain::core::miner::{IndexScheme, Miner, MinerConfig};
use vchain::core::query::{Query, RangeSpec};
use vchain::core::verify::verify_response;
use vchain::hash::Digest;

/// The contract's storage layout: block-hash → (header fields we persist).
#[derive(Default)]
struct ChainStorage {
    by_hash: HashMap<Digest, StoredBlock>,
    tip: Option<Digest>,
}

struct StoredBlock {
    height: u64,
    merkle_root: Digest,
    skiplist_root: Digest,
}

impl ChainStorage {
    /// Appendix E's `BuildvChain(objects, preBkHash)`: the indexes were
    /// built by the miner pipeline; here we persist the resulting header
    /// into the mapping keyed by the block hash.
    fn build_vchain(&mut self, header: &vchain::chain::BlockHeader) {
        let hash = header.block_hash();
        self.by_hash.insert(
            hash,
            StoredBlock {
                height: header.height,
                merkle_root: header.ads_root,
                skiplist_root: header.skiplist_root,
            },
        );
        self.tip = Some(hash);
    }
}

fn main() {
    let cfg = MinerConfig {
        scheme: IndexScheme::Both,
        skip_levels: 2,
        domain_bits: 8,
        difficulty: Difficulty(2),
        bloom_bits_per_key: 10,
    };
    println!("generating accumulator public key…");
    let acc = Acc2::keygen(2048, &mut StdRng::seed_from_u64(21));

    // Patent-registry flavored objects (the paper's IP-management example):
    // filing year (quantized) + topic keywords.
    let filings = [
        (1u64, 10u64, vec!["Blockchain", "Query"]),
        (2, 10, vec!["Blockchain", "Storage"]),
        (3, 20, vec!["Database", "Search"]),
        (4, 20, vec!["Blockchain", "Search"]),
        (5, 30, vec!["Consensus", "Network"]),
        (6, 30, vec!["Blockchain", "Query"]),
    ];

    let mut miner = Miner::new(cfg, acc);
    let mut contract = ChainStorage::default();
    let mut by_ts: std::collections::BTreeMap<u64, Vec<Object>> = Default::default();
    for (id, ts, kws) in filings {
        by_ts.entry(ts).or_default().push(Object::new(
            id,
            ts,
            vec![ts % 256],
            kws.into_iter().map(String::from).collect(),
        ));
    }
    for (ts, objs) in by_ts {
        let h = miner.mine_block(ts, objs);
        let header = miner.headers()[h as usize].clone();
        contract.build_vchain(&header);
        println!(
            "BuildvChain: stored block {h} under hash {} (MerkleRoot {}, SkipListRoot {})",
            &header.block_hash().to_hex()[..12],
            &contract.by_hash[&header.block_hash()].merkle_root.to_hex()[..12],
            &contract.by_hash[&header.block_hash()].skiplist_root.to_hex()[..12],
        );
    }
    println!("logical chain height: {}", contract.by_hash.len());
    assert_eq!(contract.by_hash.values().map(|b| b.height).max(), Some(2));
    assert!(contract.tip.is_some());

    // Patent search: "Blockchain" ∧ ("Query" ∨ "Search") — §1's example.
    let mut light = LightClient::new(cfg.difficulty);
    for h in miner.headers() {
        light.sync_header(h).unwrap();
    }
    let q = Query {
        time_window: Some((0, 40)),
        ranges: vec![RangeSpec { dim: 0, lo: 0, hi: 255 }],
        keywords: vec![vec!["Blockchain".into()], vec!["Query".into(), "Search".into()]],
    }
    .compile(cfg.domain_bits);
    let sp = miner.into_service_provider();
    let resp = sp.time_window_query(&q);
    let results = verify_response(&q, &resp, &light, &cfg, &sp.acc).expect("verifies");
    println!("verified patents matching Blockchain ∧ (Query ∨ Search):");
    for o in &results {
        println!("  patent {} {:?}", o.id, o.keywords);
    }
    assert_eq!(results.len(), 3);
}
