//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/proptest).
//!
//! Implements the subset the workspace's property tests use: integer-range
//! strategies, `prop_map`, `collection::vec`, `bool::ANY`, the `proptest!`
//! test-harness macro and the `prop_assume!` / `prop_assert!` /
//! `prop_assert_eq!` assertion macros, plus `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, on purpose:
//! * no shrinking — a failing case reports its inputs via the panic message
//!   (every strategy value is `Debug`-printed) but is not minimised;
//! * generation is deterministic per test function: the RNG is seeded from
//!   the test name, so failures reproduce exactly under `cargo test`;
//! * rejected cases (`prop_assume!`) are retried up to `max_global_rejects`
//!   times rather than tracked with proptest's local/global split.

use rand::rngs::StdRng;
use rand::{SampleUniform, SeedableRng};

pub mod bool {
    //! Boolean strategies.
    use super::{Strategy, TestRng};
    use rand::RngCore as _;

    /// Uniform `true`/`false`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.0.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Strategy producing `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.0.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The deterministic RNG driving a single `proptest!` test function.
///
/// `Clone` lets the `proptest!` macro snapshot the pre-generation state so
/// a failing case can replay generation to report its inputs without
/// Debug-formatting them on every passing case.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from the test's fully-qualified name so each test gets an
    /// independent, reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// returns the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform> Strategy for core::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng as _;
        rng.0.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng as _;
        rng.0.gen_range(self.clone())
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not a failure.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Cap on discarded cases before the runner gives up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the pairing-heavy suites fast
        // while still exercising the input space.
        ProptestConfig { cases: 64, max_global_rejects: 4096 }
    }
}

/// Drives one property: generates inputs, retries rejects, panics on the
/// first failing case. Called by the `proptest!` macro expansion.
pub fn run_property<F: FnMut(&mut TestRng) -> TestCaseResult>(
    name: &str,
    config: &ProptestConfig,
    mut case: F,
) {
    let mut rng = TestRng::for_test(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property `{name}`: too many rejected cases \
                         ({rejected} rejects for {passed}/{} passes)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed after {passed} passing case(s): {msg}");
            }
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} — {}", stringify!($cond), format!($($fmt)*)
            )));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// The property-test harness macro. Each `#[test] fn name(pat in strategy, …)
/// { body }` item expands to a normal `#[test]` that loops over generated
/// inputs, reporting the failing inputs in the panic message.
///
/// Inputs are only formatted when a case fails: the pre-generation RNG
/// state is snapshotted and generation is replayed from it on failure.
/// This re-evaluates the strategy expressions, so strategies must be pure
/// (true of everything in this workspace and of idiomatic proptest usage).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), &config, |__rng| {
                    let __rng_snapshot = __rng.clone();
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), __rng);
                    )+
                    let __result: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    __result.map_err(|e| match e {
                        $crate::TestCaseError::Fail(msg) => {
                            let mut __replay = __rng_snapshot;
                            let __inputs = format!(
                                concat!($(stringify!($arg), " = {:?}, ",)+),
                                $(&$crate::Strategy::generate(&($strat), &mut __replay)),+
                            );
                            $crate::TestCaseError::Fail(format!("{msg}\n  inputs: {__inputs}"))
                        }
                        reject => reject,
                    })
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(x in 0u64..10, y in 5u32..=9) {
            prop_assert!(x < 10);
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn assume_filters(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a <= b);
            prop_assert!(b >= a, "b={} a={}", b, a);
        }

        #[test]
        fn vec_strategy_respects_bounds(xs in crate::collection::vec(0u32..5, 0..8)) {
            prop_assert!(xs.len() < 8);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn bool_any_hits_both_values() {
        let mut rng = crate::TestRng::for_test("bool_any_hits_both_values");
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[crate::Strategy::generate(&crate::bool::ANY, &mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1], "64 draws should produce both booleans");
    }

    #[test]
    fn prop_map_applies() {
        let strat = (1u64..4).prop_map(|x| x * 10);
        let mut rng = crate::TestRng::for_test("prop_map_applies");
        for _ in 0..100 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!([10, 20, 30].contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics_with_inputs() {
        crate::run_property("fail", &ProptestConfig::with_cases(5), |_rng| {
            Err(crate::TestCaseError::Fail("boom".into()))
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        #[should_panic(expected = "inputs: x =")]
        fn failing_case_reports_replayed_inputs(x in 0u64..5) {
            prop_assert!(x > 100, "forced failure");
        }
    }
}
