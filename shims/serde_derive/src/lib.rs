//! No-op `Serialize`/`Deserialize` derive macros for the offline serde
//! shim: the shim's traits are blanket-implemented for every type, so the
//! derives only need to exist and expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
