//! Offline stand-in for the `parking_lot` crate: thin wrappers over the `std::sync`
//! primitives exposing parking_lot's poison-free signatures (`read()` /
//! `write()` / `lock()` return guards directly). Lock poisoning is converted
//! to a panic-through, which matches parking_lot's behaviour of not
//! poisoning at all for the non-panicking uses in this workspace.

use std::sync::{self, LockResult};

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
