//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the bench-definition surface the workspace's five bench targets
//! use (`criterion_group!` / `criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `BatchSize`, `Bencher::iter` / `iter_batched`) with a simple measuring
//! harness instead of criterion's statistical machinery: each benchmark is
//! warmed up once (unrecorded), then timed iteration-by-iteration until a
//! wall-clock budget is spent, and the mean/min per-iteration times are
//! printed. Good enough for the smoke numbers and regression eyeballing
//! this repo needs; swap in the real crate when the environment has network
//! access.
//!
//! Environment knobs:
//! * `VCHAIN_BENCH_BUDGET_MS` — per-benchmark measurement budget
//!   (default 300 ms).
//! * Positional CLI args act as substring filters on benchmark names, like
//!   `cargo bench -- <filter>`.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. The shim times each routine
/// call individually, so the variants only influence batching hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    fn render(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function: s.to_string(), parameter: String::new() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function: s, parameter: String::new() }
    }
}

/// Measures closures handed to it by a benchmark body.
pub struct Bencher {
    budget: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher { budget, samples: Vec::new() }
    }

    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up once, unrecorded (cold caches / lazy statics would bias
        // the mean), then take at least one measured sample even if the
        // warm-up exhausted the budget.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let warmup = t0.elapsed();
        let deadline = Instant::now() + self.budget.saturating_sub(warmup);
        loop {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Time `routine` over fresh inputs produced by `setup`; only the
    /// routine is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        let warmup = t0.elapsed();
        let deadline = Instant::now() + self.budget.saturating_sub(warmup);
        loop {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    filters: Vec<String>,
    budget: Duration,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget_ms = std::env::var("VCHAIN_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion { filters: Vec::new(), budget: Duration::from_millis(budget_ms), ran: 0 }
    }
}

impl Criterion {
    /// Parse `cargo bench` CLI args: flags are ignored, positional args are
    /// name filters.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            if a == "--" {
                continue;
            }
            if a.starts_with('-') {
                // Skip a possible value of `--flag value` style options.
                if !a.contains('=')
                    && matches!(
                        a.as_str(),
                        "--save-baseline" | "--baseline" | "--load-baseline" | "--sample-size"
                    )
                {
                    args.next();
                }
                continue;
            }
            self.filters.push(a);
        }
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.matches(name) {
            return;
        }
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        self.ran += 1;
        let n = b.samples.len() as u32;
        if n == 0 {
            println!("{name:<56} (no samples)");
            return;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / n;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<56} time: [mean {:>12}  min {:>12}  iters {n}]",
            fmt_duration(mean),
            fmt_duration(min)
        );
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Print the trailing summary; called by `criterion_main!`.
    pub fn final_summary(&self) {
        println!("\n{} benchmark(s) measured", self.ran);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's stopping rule is
    /// wall-clock budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F, I>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        I: Into<BenchmarkId>,
    {
        let full = format!("{}/{}", self.name, id.into().render());
        self.criterion.run_one(&full, &mut f);
        self
    }

    pub fn bench_with_input<F, I>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.render());
        self.criterion.run_one(&full, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Define a group function that runs each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion { filters: Vec::new(), budget: Duration::from_millis(5), ran: 0 };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn filters_skip_nonmatching() {
        let mut c = Criterion {
            filters: vec!["match-me".into()],
            budget: Duration::from_millis(5),
            ran: 0,
        };
        c.bench_function("other", |b| b.iter(|| ()));
        assert_eq!(c.ran, 0);
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("match-me", 7), &3, |b, x| b.iter(|| x + 1));
        g.finish();
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn iter_batched_measures_routine() {
        let mut b = Bencher::new(Duration::from_millis(2));
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        assert!(!b.samples.is_empty());
    }
}
