//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access, so the
//! handful of `rand 0.8` APIs the vChain reproduction actually uses are
//! re-implemented here behind the same paths (`rand::Rng`,
//! `rand::SeedableRng`, `rand::rngs::StdRng`). The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! `seed_from_u64` input, which is all the seeded test/bench harnesses rely
//! on. None of this is used for production key material: accumulator keygen
//! in tests is explicitly seeded, and the shim documents itself as
//! non-cryptographic.

pub mod rngs;

/// Core random source: everything derives from a 64-bit output stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an `RngCore` (the shim's
/// analogue of `Standard: Distribution<T>`).
pub trait Sample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Sample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision, matching `rand`'s
/// `Standard` distribution for `f64`.
impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types that support uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from the inclusive interval `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The value immediately below `x`, for converting exclusive bounds.
    fn decrement(x: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as u128) - (lo as u128) + 1;
                // Multiply-shift (Lemire) keeps bias below 2^-64 for the
                // sub-64-bit spans this workspace samples.
                let hi_bits = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                lo + hi_bits as $t
            }
            fn decrement(x: Self) -> Self { x - 1 }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let hi_bits = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + hi_bits as i128) as $t
            }
            fn decrement(x: Self) -> Self { x - 1 }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(rng, self.start, T::decrement(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`] exactly as in `rand 0.8`.
pub trait Rng: RngCore {
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators; only the `seed_from_u64` entry point is used by
/// this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let z: usize = rng.gen_range(0..3);
            assert!(z < 3);
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        let mean = acc / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn fill_covers_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
