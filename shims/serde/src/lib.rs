//! Offline stand-in for the [`serde`](https://serde.rs) facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few public types as
//! API surface, but no code path actually serializes anything (no
//! `serde_json`/`bincode` in the tree — VO sizes are accounted manually in
//! `vchain-core::vo`). Since the build environment is offline, this shim
//! keeps the derives compiling: the traits are markers with blanket
//! implementations and the derive macros expand to nothing. The moment a
//! real serialization backend is introduced, replace this shim with the
//! real `serde` (the paths are identical, so only the manifest changes).

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
