//! Workspace-level integration tests: datagen → miner → SP → light client,
//! written against the `vchain` facade crate, with randomized workloads and
//! queries cross-checked against a naive scan.

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain::acc::Acc2;
use vchain::chain::{Difficulty, LightClient};
use vchain::core::miner::{IndexScheme, Miner, MinerConfig};
use vchain::core::verify::verify_response;
use vchain::core::vo::VoSize;
use vchain::datagen::{Dataset, WorkloadSpec};

fn acc() -> Acc2 {
    static ACC: OnceLock<Acc2> = OnceLock::new();
    ACC.get_or_init(|| Acc2::keygen(8192, &mut StdRng::seed_from_u64(0xBEEF)))
        .clone()
        .with_fast_setup(true)
}

fn run_dataset(ds: Dataset, seed: u64) {
    let mut spec = WorkloadSpec::paper_defaults(ds, 8);
    spec.objects_per_block = 4;
    spec.seed = seed;
    let w = spec.generate();
    let cfg = MinerConfig {
        scheme: IndexScheme::Both,
        skip_levels: 2,
        domain_bits: spec.domain_bits,
        difficulty: Difficulty(1),
        bloom_bits_per_key: 10,
    };
    let mut miner = Miner::new(cfg, acc());
    for (ts, objs) in &w.blocks {
        miner.mine_block(*ts, objs.clone());
    }
    let mut light = LightClient::new(cfg.difficulty);
    for h in miner.headers() {
        light.sync_header(h).unwrap();
    }
    let sp = miner.into_service_provider();

    let mut qg = spec.query_gen(seed * 31 + 1);
    for trial in 0..3 {
        let window = w.window_of_last(4 + (trial % 4));
        let q = qg.time_window(window).compile(spec.domain_bits);
        let resp = sp.time_window_query(&q);
        let verified = verify_response(&q, &resp, &light, &cfg, &sp.acc)
            .unwrap_or_else(|e| panic!("{ds:?} trial {trial}: {e}"));
        // ground truth by naive scan
        let mut expect: Vec<u64> = w
            .blocks
            .iter()
            .flat_map(|(_, objs)| objs.iter())
            .filter(|o| q.object_matches(o))
            .map(|o| o.id)
            .collect();
        expect.sort_unstable();
        let mut got: Vec<u64> = verified.iter().map(|o| o.id).collect();
        got.sort_unstable();
        assert_eq!(got, expect, "{ds:?} trial {trial}");
        assert!(resp.vo_size_bytes(&sp.acc) > 0);
    }
}

#[test]
fn foursquare_pipeline() {
    run_dataset(Dataset::FourSquare, 11);
}

#[test]
fn weather_pipeline() {
    run_dataset(Dataset::Weather, 12);
}

#[test]
fn ethereum_pipeline() {
    run_dataset(Dataset::Ethereum, 13);
}

#[test]
fn schemes_agree_on_results() {
    // nil / intra / both must produce identical verified result sets.
    let mut spec = WorkloadSpec::paper_defaults(Dataset::FourSquare, 6);
    spec.objects_per_block = 4;
    let w = spec.generate();
    let mut per_scheme = Vec::new();
    for scheme in [IndexScheme::Nil, IndexScheme::Intra, IndexScheme::Both] {
        let cfg = MinerConfig {
            scheme,
            skip_levels: 2,
            domain_bits: spec.domain_bits,
            difficulty: Difficulty(1),
            bloom_bits_per_key: 10,
        };
        let mut miner = Miner::new(cfg, acc());
        for (ts, objs) in &w.blocks {
            miner.mine_block(*ts, objs.clone());
        }
        let mut light = LightClient::new(cfg.difficulty);
        for h in miner.headers() {
            light.sync_header(h).unwrap();
        }
        let sp = miner.into_service_provider();
        let mut qg = spec.query_gen(77);
        let q = qg.time_window(w.window_of_last(5)).compile(spec.domain_bits);
        let resp = sp.time_window_query(&q);
        let mut ids: Vec<u64> = verify_response(&q, &resp, &light, &cfg, &sp.acc)
            .unwrap()
            .iter()
            .map(|o| o.id)
            .collect();
        ids.sort_unstable();
        per_scheme.push(ids);
    }
    assert_eq!(per_scheme[0], per_scheme[1]);
    assert_eq!(per_scheme[1], per_scheme[2]);
}

#[test]
fn headers_are_light() {
    // A light client stores orders of magnitude less than the full chain.
    let spec = WorkloadSpec::paper_defaults(Dataset::Ethereum, 6);
    let w = spec.generate();
    let cfg = MinerConfig {
        scheme: IndexScheme::Both,
        skip_levels: 2,
        domain_bits: spec.domain_bits,
        difficulty: Difficulty(1),
        bloom_bits_per_key: 10,
    };
    let mut miner = Miner::new(cfg, acc());
    for (ts, objs) in &w.blocks {
        miner.mine_block(*ts, objs.clone());
    }
    let mut light = LightClient::new(cfg.difficulty);
    for h in miner.headers() {
        light.sync_header(h).unwrap();
    }
    let header_bytes = light.storage_bits() / 8;
    let ads_bytes: usize = miner.indexed().iter().map(|ib| ib.ads_size_bytes(&miner.acc)).sum();
    assert!(
        header_bytes * 4 < ads_bytes,
        "headers ({header_bytes} B) must be far smaller than the ADS ({ads_bytes} B)"
    );
}
