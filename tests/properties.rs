//! Workspace-level property-based tests on the core invariants, using a
//! cheap shared accumulator key so proptest can afford pairing checks.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain::acc::{Acc1, Acc2, Accumulator, MultiSet};
use vchain::chain::Object;
use vchain::core::element::ElementId;
use vchain::core::query::{object_multiset, Query, RangeSpec};

fn acc1() -> Acc1 {
    static A: OnceLock<Acc1> = OnceLock::new();
    A.get_or_init(|| Acc1::keygen(128, &mut StdRng::seed_from_u64(1))).clone()
}

fn acc2() -> Acc2 {
    static A: OnceLock<Acc2> = OnceLock::new();
    A.get_or_init(|| Acc2::keygen(8192, &mut StdRng::seed_from_u64(2))).clone()
}

/// Element multisets drawn from a keyword universe disjoint from other
/// tests ("pp:<n>").
fn ms_strategy(max_len: usize) -> impl Strategy<Value = MultiSet<ElementId>> {
    proptest::collection::vec(0u32..40, 0..max_len)
        .prop_map(|ids| ids.into_iter().map(|i| ElementId::keyword(&format!("pp:{i}"))).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn acc1_disjoint_proofs_round_trip(
        a in ms_strategy(8),
        b_ids in proptest::collection::vec(100u32..140, 1..4),
    ) {
        let acc = acc1();
        let b: MultiSet<ElementId> =
            b_ids.into_iter().map(|i| ElementId::keyword(&format!("pp:{i}"))).collect();
        // a uses ids < 40, b uses ids >= 100 => always disjoint
        let proof = acc.prove_disjoint(&a, &b).unwrap();
        prop_assert!(acc.verify_disjoint(&acc.setup(&a), &acc.setup(&b), &proof));
        // A proof must not transfer to a modified right-hand set — *unless*
        // `a` is empty: then the Bézout witness is (1, 0), and the empty
        // set is genuinely disjoint from every set, so transfer is sound.
        if !a.is_empty() {
            let mut b2 = b.clone();
            b2.insert(ElementId::keyword("pp:999"));
            prop_assert!(!acc.verify_disjoint(&acc.setup(&a), &acc.setup(&b2), &proof));
        }
    }

    #[test]
    fn acc2_sum_homomorphism(a in ms_strategy(6), b in ms_strategy(6)) {
        let acc = acc2();
        let direct = acc.setup(&a.sum(&b));
        let aggregated = acc.sum(&[acc.setup(&a), acc.setup(&b)]).unwrap();
        prop_assert_eq!(direct, aggregated);
    }

    #[test]
    fn object_multiset_reflects_matching(
        price in 0u64..256,
        lo in 0u64..256,
        hi in 0u64..256,
        kw in 0u32..6,
        qkw in 0u32..6,
    ) {
        prop_assume!(lo <= hi);
        let o = Object::new(1, 5, vec![price], vec![format!("pk:{kw}")]);
        let q = Query {
            time_window: None,
            ranges: vec![RangeSpec { dim: 0, lo, hi }],
            keywords: vec![vec![format!("pk:{qkw}")]],
        }.compile(8);
        let direct = price >= lo && price <= hi && kw == qkw;
        prop_assert_eq!(q.object_matches(&o), direct);
        // CNF evaluation agrees with find_disjoint_clause
        let ms = object_multiset(&o, 8);
        prop_assert_eq!(q.cnf.find_disjoint_clause(&ms).is_none(), q.cnf.matches(&ms));
    }

    #[test]
    fn projective_and_affine_miller_loops_agree(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        use vchain::pairing::{pairing, pairing_impl, G1Projective, G2Projective};
        // The production (projective, inversion-free) Miller loop and the
        // retained affine reference differ in raw Fp12 output only by
        // subfield line scalings; the final exponentiation must erase them.
        let p = G1Projective::generator().mul_u64(a).to_affine();
        let q = G2Projective::generator().mul_u64(b).to_affine();
        prop_assert_eq!(pairing(&p, &q), pairing_impl::affine::pairing(&p, &q));
    }

    #[test]
    fn cached_and_cold_proofs_byte_match(
        a in ms_strategy(6),
        b_ids in proptest::collection::vec(100u32..140, 1..4),
    ) {
        use vchain::core::cache::ProofCache;
        let acc = acc2();
        let b: MultiSet<ElementId> =
            b_ids.into_iter().map(|i| ElementId::keyword(&format!("pp:{i}"))).collect();
        // ids < 40 vs ids >= 100 => always disjoint
        let att = acc.setup(&a);
        let cache: ProofCache<Acc2> = ProofCache::new(16);
        // two overlapping windows replay the same (value, clause) pair: the
        // first query proves cold, the second hits the cache — the proofs
        // must serialize identically (and match a cache-free derivation).
        let w1 = acc.prove_disjoint(&a, &b).unwrap();
        let cold = cache.get_or_prove(&acc, &att, &a, &b).unwrap();
        let warm = cache.get_or_prove(&acc, &att, &a, &b).unwrap();
        prop_assert_eq!(cache.stats().hits, 1);
        prop_assert_eq!(Acc2::proof_bytes(&cold), Acc2::proof_bytes(&warm));
        prop_assert_eq!(Acc2::proof_bytes(&w1), Acc2::proof_bytes(&warm));
    }

    #[test]
    fn multiset_algebra(xs in proptest::collection::vec(0u64..30, 0..20),
                        ys in proptest::collection::vec(0u64..30, 0..20)) {
        let a: MultiSet<u64> = xs.iter().map(|x| x + 1).collect();
        let b: MultiSet<u64> = ys.iter().map(|y| y + 1).collect();
        // sum cardinality adds; union support is the max
        prop_assert_eq!(a.sum(&b).total_count(), a.total_count() + b.total_count());
        let u = a.union(&b);
        for e in a.elements().chain(b.elements()) {
            prop_assert!(u.contains(e));
            prop_assert_eq!(u.count(e), a.count(e).max(b.count(e)));
        }
        // disjointness is symmetric and consistent with intersection size
        prop_assert_eq!(a.is_disjoint(&b), b.is_disjoint(&a));
        prop_assert_eq!(a.is_disjoint(&b), a.intersection_size(&b) == 0);
    }
}
