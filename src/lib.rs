//! # vChain — verifiable Boolean range queries over blockchain databases
//!
//! Facade crate of the workspace reproducing *"vChain: Enabling Verifiable
//! Boolean Range Queries over Blockchain Databases"* (Xu, Zhang, Xu —
//! SIGMOD 2019). It re-exports the public API of every layer:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `vchain-core` | the paper's contribution: `trans(·)`, intra/inter indexes, verifiable queries, subscriptions |
//! | [`acc`] | `vchain-acc` | the two multiset accumulator constructions |
//! | [`chain`] | `vchain-chain` | blocks, mining, chain store, light client |
//! | [`pairing`] | `vchain-pairing` | from-scratch BLS12-381 |
//! | [`hash`] | `vchain-hash` | SHA-256 and digests |
//! | [`bigint`] | `vchain-bigint` | fixed-width Montgomery integers |
//! | [`datagen`] | `vchain-datagen` | the paper's three dataset simulators |
//!
//! ## Quickstart
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use vchain::acc::Acc2;
//! use vchain::chain::{Difficulty, LightClient, Object};
//! use vchain::core::miner::{IndexScheme, Miner, MinerConfig};
//! use vchain::core::query::{Query, RangeSpec};
//! use vchain::core::verify::verify_response;
//!
//! // 1. system parameters + accumulator key
//! let cfg = MinerConfig {
//!     scheme: IndexScheme::Both,
//!     skip_levels: 3,
//!     domain_bits: 8,
//!     difficulty: Difficulty(2),
//!     bloom_bits_per_key: 10,
//! };
//! let acc = Acc2::keygen(2048, &mut StdRng::seed_from_u64(1));
//!
//! // 2. mine a couple of blocks with embedded ADS
//! let mut miner = Miner::new(cfg, acc);
//! miner.mine_block(10, vec![Object::new(1, 10, vec![220], vec!["Sedan".into(), "Benz".into()])]);
//! miner.mine_block(20, vec![Object::new(2, 20, vec![90], vec!["Van".into(), "BMW".into()])]);
//!
//! // 3. a light client syncs headers only
//! let mut light = LightClient::new(cfg.difficulty);
//! for h in miner.headers() { light.sync_header(h).unwrap(); }
//!
//! // 4. the (untrusted) SP answers; the user verifies against headers
//! let sp = miner.into_service_provider();
//! let q = Query {
//!     time_window: Some((0, 30)),
//!     ranges: vec![RangeSpec { dim: 0, lo: 200, hi: 250 }],
//!     keywords: vec![vec!["Sedan".into()]],
//! }.compile(cfg.domain_bits);
//! let resp = sp.time_window_query(&q);
//! let results = verify_response(&q, &resp, &light, &cfg, &sp.acc).expect("verified");
//! assert_eq!(results.len(), 1);
//! assert_eq!(results[0].id, 1);
//! ```
//!
//! ## Serving at scale
//!
//! For a long-lived deployment, wrap the SP in the persistent, sharded
//! serving layer ([`core::sp::ShardedServiceProvider`]): proofs and Acc2
//! witnesses are written behind the serving path to per-shard append-only
//! logs, and a restarted provider rehydrates them instead of re-proving —
//! answering the same queries byte-identically, warm:
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use vchain::acc::Acc2;
//! use vchain::chain::{Difficulty, Object};
//! use vchain::core::miner::{IndexScheme, Miner, MinerConfig};
//! use vchain::core::query::Query;
//! use vchain::core::wire::encode_response;
//! use vchain::core::{ShardedConfig, ShardedServiceProvider};
//!
//! let cfg = MinerConfig {
//!     scheme: IndexScheme::Both,
//!     skip_levels: 2,
//!     domain_bits: 6,
//!     difficulty: Difficulty(2),
//!     bloom_bits_per_key: 10,
//! };
//! let build_sp = || {
//!     let mut miner = Miner::new(cfg, Acc2::keygen(512, &mut StdRng::seed_from_u64(7)));
//!     miner.mine_block(10, vec![Object::new(1, 10, vec![3], vec!["Sedan".into()])]);
//!     miner.mine_block(20, vec![Object::new(2, 20, vec![9], vec!["Van".into()])]);
//!     miner.into_service_provider()
//! };
//! let q = Query {
//!     time_window: Some((0, 30)),
//!     ranges: vec![],
//!     keywords: vec![vec!["Sedan".into()]],
//! }
//! .compile(cfg.domain_bits);
//!
//! let dir = std::env::temp_dir().join(format!("vchain-facade-doc-{}", std::process::id()));
//! let shard_cfg = ShardedConfig { shards: 2, cache_capacity: 1024, flush_threshold: 1 };
//!
//! // Cold run: proofs are proved once and logged behind the serving path.
//! let (cold, _) = ShardedServiceProvider::open(build_sp(), shard_cfg, &dir).unwrap();
//! let cold_bytes = encode_response(&cold.query(&q));
//! cold.shutdown().unwrap();
//!
//! // "Deploy": a fresh process reopens the same logs and serves warm.
//! let (warm, recovery) = ShardedServiceProvider::open(build_sp(), shard_cfg, &dir).unwrap();
//! assert!(recovery.proofs_loaded > 0);
//! assert_eq!(encode_response(&warm.query(&q)), cold_bytes);
//! assert!(warm.merged_stats().hits > 0); // served from the rehydrated cache
//! std::fs::remove_dir_all(&dir).ok();
//! ```

pub use vchain_acc as acc;
pub use vchain_bigint as bigint;
pub use vchain_chain as chain;
pub use vchain_core as core;
pub use vchain_datagen as datagen;
pub use vchain_hash as hash;
pub use vchain_pairing as pairing;
